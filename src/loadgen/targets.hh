/**
 * @file
 * Concrete traffic targets: the service-stack entry points the
 * traffic engine can drive per request, and the wiring from the
 * workload registry.
 *
 * Three granularities:
 *
 *  - "kv-get": one Zipfian GET through the HBase-style region-server
 *    read path per request — the paper's H-Read (#1) as sustained
 *    traffic instead of a fixed-count batch loop.
 *  - "sql-filter": one vectorized filter + project query over the
 *    e-commerce ORDER table per request, with a per-request random
 *    predicate — the Impala-style interactive-analysis op.
 *  - "workload:<roster name>": any workload registered in
 *    workloads/registry driven as a macro-request (one full
 *    execute() per request) — job submissions as a traffic stream.
 *
 * Shared target state is built once and immutable afterwards; every
 * mutable piece (engine, tracer, RunEnv) lives in the per-actor
 * session, so sessions never synchronize.
 */

#ifndef WCRT_LOADGEN_TARGETS_HH
#define WCRT_LOADGEN_TARGETS_HH

#include <memory>
#include <string>
#include <vector>

#include "loadgen/actor.hh"

namespace wcrt {

/** The fine-grained traffic target names. */
const std::vector<std::string> &trafficTargetNames();

/**
 * Build a traffic target by name: one of trafficTargetNames(), or
 * "workload:<name>" for any entry findWorkload() resolves. Panics on
 * an unknown name.
 *
 * @param name Target name.
 * @param scale Dataset scale (same meaning as workload scale).
 * @param seed Dataset-generation seed.
 */
std::unique_ptr<TrafficTarget> makeTrafficTarget(
    const std::string &name, double scale, uint64_t seed = 7);

} // namespace wcrt

#endif // WCRT_LOADGEN_TARGETS_HH
