/**
 * @file
 * The traffic orchestrator: N actors stepped through declared phases
 * against one traffic target, with latency percentiles per phase.
 *
 * Concurrency model: actors are not threads. Each phase is one
 * bounded ticket on the process-wide WorkerPool::shared() with one
 * index per actor, so actor execution shares the same pool (and the
 * same --jobs cap semantics) as every replay path in the toolkit — no
 * ad-hoc std::thread anywhere. Phase transitions are barriers: the
 * orchestrator waits the phase ticket (helping execute actors
 * itself), merges the per-actor histograms, and only then submits the
 * next phase, so no actor can run phase p+1 work while any actor is
 * still inside phase p.
 *
 * Determinism: phases declare per-actor request *counts*, request
 * content comes from per-actor seeded Rng streams, and arrival
 * schedules are drawn from separate per-(actor, phase) seeded
 * streams. The set of requests issued — and the op stream each
 * session emits — is therefore a pure function of (target, phases,
 * config.seed), identical at jobs=1 and jobs=N; only the recorded
 * wall-clock latencies vary with the host.
 */

#ifndef WCRT_LOADGEN_ORCHESTRATOR_HH
#define WCRT_LOADGEN_ORCHESTRATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "loadgen/actor.hh"
#include "loadgen/phase.hh"
#include "sim/corun.hh"

namespace wcrt {

/** Engine-level knobs of one load run. */
struct OrchestratorConfig
{
    unsigned actors = 1;     //!< concurrent sessions
    unsigned jobs = 0;       //!< executor cap (0 = hardware threads)
    uint64_t seed = 1;       //!< root seed for every derived stream
    /**
     * Capture actor 0's op stream (across all phases) into a
     * TraceRecorder, for co-run interference studies against another
     * workload's trace via sim/corun.
     */
    bool recordActor0 = false;
};

/** Everything one load run produced. */
struct TrafficResult
{
    std::string target;
    unsigned actors = 0;
    std::vector<PhaseStats> phases;  //!< recorded phases only
    uint64_t totalRequests = 0;      //!< including unrecorded phases
    uint64_t totalTraceOps = 0;      //!< emitted by all sessions
};

/**
 * Steps actors through phases; one instance per load run.
 */
class Orchestrator
{
  public:
    Orchestrator(TrafficTarget &target, std::vector<PhaseSpec> phases,
                 OrchestratorConfig config = {});

    /** Execute every phase in order and return the merged result. */
    TrafficResult run();

    /**
     * Actor 0's recorded ops (empty unless config.recordActor0).
     * Valid after run().
     */
    const std::vector<MicroOp> &recordedOps() const
    {
        return recorder.trace();
    }

  private:
    void runActorPhase(ActorState &actor, const PhaseSpec &phase,
                       size_t phase_index);

    TrafficTarget &target;
    std::vector<PhaseSpec> phases;
    OrchestratorConfig cfg;
    std::vector<ActorState> actors;
    TraceRecorder recorder;  //!< actor 0 capture (opt-in)
    bool ran = false;
};

} // namespace wcrt

#endif // WCRT_LOADGEN_ORCHESTRATOR_HH
