#include "loadgen/orchestrator.hh"

#include <chrono>
#include <thread>

#include "base/logging.hh"
#include "base/worker_pool.hh"

namespace wcrt {

namespace {

using SteadyClock = std::chrono::steady_clock;

uint64_t
nsSince(SteadyClock::time_point t0)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now() - t0)
            .count());
}

/**
 * Wait until `deadline_ns` after `t0`. Sleeps for the bulk of a long
 * wait and yields across the remainder — open-loop schedules need
 * starts near the intended instant without burning a core on a pure
 * spin (actors share the pool with the service they are loading).
 * The sleep slack is generous: containerized hosts routinely overrun
 * sleep_for by multiple milliseconds, and an open-loop actor that
 * oversleeps every gap runs the whole phase behind schedule, so waits
 * below the slack are served by yielding alone.
 */
void
waitUntil(SteadyClock::time_point t0, uint64_t deadline_ns)
{
    constexpr uint64_t kSleepSlackNs = 5 * 1000 * 1000;
    uint64_t now = nsSince(t0);
    if (now + kSleepSlackNs < deadline_ns) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            deadline_ns - now - kSleepSlackNs));
    }
    while (nsSince(t0) < deadline_ns)
        std::this_thread::yield();
}

} // namespace

Orchestrator::Orchestrator(TrafficTarget &target,
                           std::vector<PhaseSpec> phases,
                           OrchestratorConfig config)
    : target(target), phases(std::move(phases)), cfg(config)
{
    if (cfg.actors == 0)
        wcrt_fatal("orchestrator needs at least one actor");
    // Derive every per-actor stream from the root seed up front, on
    // this thread, so actor count — not scheduling — decides the
    // streams. Request and arrival streams are split separately:
    // arrival draws must never perturb request content.
    Rng root(cfg.seed);
    actors.resize(cfg.actors);
    for (unsigned a = 0; a < cfg.actors; ++a) {
        ActorState &st = actors[a];
        st.id = a;
        st.requestRng = Rng(root.next());
        st.arrivalSeed = root.next();
        st.session = target.startSession(
            a, root.next(),
            (cfg.recordActor0 && a == 0) ? &recorder : nullptr);
        if (!st.session)
            wcrt_fatal("target ", target.name(),
                       " produced no session for actor ", a);
    }
}

void
Orchestrator::runActorPhase(ActorState &actor, const PhaseSpec &phase,
                            size_t phase_index)
{
    // Fresh arrival process per (actor, phase): deterministic in the
    // pair, independent of everything that ran before.
    ArrivalProcess arrival(
        phase.arrival,
        actor.arrivalSeed +
            0x9e3779b97f4a7c15ull * (phase_index + 1));
    const auto t0 = SteadyClock::now();
    for (uint64_t i = 0; i < phase.opsPerActor; ++i) {
        uint64_t start_ns;
        if (arrival.openLoop()) {
            // Latency counts from the *scheduled* start: a request
            // the actor picks up late (the server saturated) has
            // been queueing since its arrival instant, and that
            // delay belongs in the tail percentiles.
            start_ns = arrival.nextScheduleNs();
            waitUntil(t0, start_ns);
        } else {
            start_ns = nsSince(t0);
        }
        actor.session->request(actor.requestRng);
        uint64_t end_ns = nsSince(t0);
        if (phase.record) {
            actor.latency.record(end_ns > start_ns ? end_ns - start_ns
                                                   : 0);
        }
        ++actor.phaseRequests;
        if (!arrival.openLoop()) {
            uint64_t think = arrival.nextThinkNs();
            if (think > 0)
                waitUntil(t0, end_ns + think);
        }
    }
    actor.phaseElapsedNs = nsSince(t0);
}

TrafficResult
Orchestrator::run()
{
    if (ran)
        wcrt_fatal("an Orchestrator runs exactly once");
    ran = true;

    TrafficResult result;
    result.target = target.name();
    result.actors = cfg.actors;

    for (size_t p = 0; p < phases.size(); ++p) {
        const PhaseSpec &phase = phases[p];
        uint64_t ops_before = 0;
        for (ActorState &st : actors) {
            st.latency.clear();
            st.phaseRequests = 0;
            st.phaseElapsedNs = 0;
            ops_before += st.session->traceOps();
        }

        // One bounded ticket per phase; waiting it is the phase
        // barrier (the orchestrator thread helps execute actors).
        const auto t0 = SteadyClock::now();
        const unsigned cap =
            cfg.jobs > 0 ? cfg.jobs : WorkerPool::hardwareWorkers();
        WorkerPool::shared().runBounded(
            actors.size(), cap,
            [&](size_t a) { runActorPhase(actors[a], phase, p); });
        const uint64_t elapsed = nsSince(t0);

        // Post-barrier merge on this thread: the per-actor metrics
        // path never shares a cache line, let alone a lock.
        PhaseStats stats;
        stats.name = phase.name;
        stats.arrival = phase.arrival.kind;
        stats.elapsedNs = elapsed;
        if (phase.arrival.kind != ArrivalKind::ClosedLoop) {
            stats.offeredRateHz =
                phase.arrival.ratePerActorHz * cfg.actors;
        }
        uint64_t ops_after = 0;
        for (ActorState &st : actors) {
            stats.requests += st.phaseRequests;
            stats.latency.merge(st.latency);
            ops_after += st.session->traceOps();
        }
        stats.traceOps = ops_after - ops_before;
        result.totalRequests += stats.requests;
        if (phase.record)
            result.phases.push_back(std::move(stats));
    }

    for (ActorState &st : actors)
        result.totalTraceOps += st.session->traceOps();
    return result;
}

} // namespace wcrt
