/**
 * @file
 * Arrival processes for the traffic engine: when each request of a
 * phase is supposed to start.
 *
 * Three processes cover the load-generation literature's standard
 * shapes (and genny's PhaseLoop rate controls):
 *
 *  - Closed loop: an actor issues the next request only after the
 *    previous one completed, optionally separated by an exponential
 *    think time. Offered load adapts to service capacity, so a closed
 *    loop measures peak throughput, not queueing.
 *  - Open loop (Poisson): request i is due at a pre-drawn absolute
 *    offset from phase start, with exponential inter-arrival gaps.
 *    The schedule does not care how long service takes; latency is
 *    measured from the *scheduled* start, so queueing delay from an
 *    overloaded server accumulates into the tail percentiles instead
 *    of being coordinated-omission'd away.
 *  - Token bucket: open-loop arrivals clamped to a sustained rate
 *    with a configurable burst allowance — the shape produced by a
 *    rate limiter in front of a service.
 *
 * Every process is seeded and consumes its own Rng, so the schedule
 * for (spec, seed) is one deterministic sequence regardless of how
 * many actors run concurrently or how fast the host is.
 */

#ifndef WCRT_LOADGEN_ARRIVAL_HH
#define WCRT_LOADGEN_ARRIVAL_HH

#include <cstdint>

#include "base/rng.hh"

namespace wcrt {

/** The supported arrival shapes. */
enum class ArrivalKind : uint8_t {
    ClosedLoop,   //!< next op after previous completion (+ think time)
    PoissonOpen,  //!< exponential inter-arrival gaps at a fixed rate
    TokenBucket,  //!< rate-limited open loop with burst capacity
};

/** Human-readable arrival-kind name. */
const char *toString(ArrivalKind k);

/** Declarative arrival configuration for one phase. */
struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::ClosedLoop;
    double ratePerActorHz = 0.0;  //!< open-loop ops/sec per actor
    double thinkMeanNs = 0.0;     //!< closed-loop mean think time
    uint32_t burst = 1;           //!< token-bucket depth (>= 1)
};

/**
 * Stateful per-actor schedule generator. One instance per
 * (actor, phase); equal (spec, seed) pairs yield equal sequences.
 */
class ArrivalProcess
{
  public:
    ArrivalProcess(const ArrivalSpec &spec, uint64_t seed);

    /** True for the open shapes (scheduled starts); false for closed. */
    bool openLoop() const { return spec.kind != ArrivalKind::ClosedLoop; }

    /**
     * Open-loop only: scheduled start of the next request as a
     * nanosecond offset from phase start. Monotonically non-decreasing.
     */
    uint64_t nextScheduleNs();

    /**
     * Closed-loop only: think time to insert after the previous
     * request's completion (0 when thinkMeanNs is 0).
     */
    uint64_t nextThinkNs();

  private:
    ArrivalSpec spec;
    Rng rng;
    uint64_t clockNs = 0;   //!< last scheduled offset
    uint64_t issued = 0;    //!< requests scheduled so far
};

} // namespace wcrt

#endif // WCRT_LOADGEN_ARRIVAL_HH
