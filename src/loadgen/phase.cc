#include "loadgen/phase.hh"

namespace wcrt {

PhaseSpec
warmupPhase(uint64_t ops_per_actor)
{
    PhaseSpec p;
    p.name = "warmup";
    p.opsPerActor = ops_per_actor;
    p.record = false;
    return p;
}

PhaseSpec
closedPhase(std::string name, uint64_t ops_per_actor,
            double think_mean_ns)
{
    PhaseSpec p;
    p.name = std::move(name);
    p.opsPerActor = ops_per_actor;
    p.arrival.kind = ArrivalKind::ClosedLoop;
    p.arrival.thinkMeanNs = think_mean_ns;
    return p;
}

PhaseSpec
poissonPhase(std::string name, uint64_t ops_per_actor,
             double rate_per_actor_hz)
{
    PhaseSpec p;
    p.name = std::move(name);
    p.opsPerActor = ops_per_actor;
    p.arrival.kind = ArrivalKind::PoissonOpen;
    p.arrival.ratePerActorHz = rate_per_actor_hz;
    return p;
}

PhaseSpec
tokenBucketPhase(std::string name, uint64_t ops_per_actor,
                 double rate_per_actor_hz, uint32_t burst)
{
    PhaseSpec p;
    p.name = std::move(name);
    p.opsPerActor = ops_per_actor;
    p.arrival.kind = ArrivalKind::TokenBucket;
    p.arrival.ratePerActorHz = rate_per_actor_hz;
    p.arrival.burst = burst;
    return p;
}

double
PhaseStats::achievedRateHz() const
{
    if (elapsedNs == 0)
        return 0.0;
    return static_cast<double>(requests) * 1e9 /
           static_cast<double>(elapsedNs);
}

} // namespace wcrt
