/**
 * @file
 * The actor-side abstraction of the traffic engine: what one actor
 * thread drives (a session against a traffic target) and the private
 * state the orchestrator keeps per actor.
 *
 * A TrafficTarget is the service under load — the kvstore read path,
 * a SQL query, a whole registered workload. Sessions are the unit of
 * isolation: every actor gets its own session (own Tracer, own
 * RunEnv, own engine state), so request() never synchronizes with
 * other actors and the per-op metrics path stays lock-free. Shared
 * target state (datasets) is immutable after construction.
 */

#ifndef WCRT_LOADGEN_ACTOR_HH
#define WCRT_LOADGEN_ACTOR_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/rng.hh"
#include "loadgen/histogram.hh"
#include "trace/microop.hh"

namespace wcrt {

/**
 * One actor's connection to the service under load. Not thread-safe;
 * each session is driven by exactly one actor at a time.
 */
class ActorSession
{
  public:
    virtual ~ActorSession() = default;

    /**
     * Serve one request. `rng` is the actor's seeded request stream
     * (key choice, query parameters); consuming it here — and never
     * for timing decisions — keeps the op sequence independent of
     * scheduling.
     */
    virtual void request(Rng &rng) = 0;

    /** Dynamic instructions this session has emitted so far. */
    virtual uint64_t traceOps() const = 0;
};

/**
 * Factory for per-actor sessions against one service.
 */
class TrafficTarget
{
  public:
    virtual ~TrafficTarget() = default;

    /** Target name (the loadgen roster key). */
    virtual std::string name() const = 0;

    /**
     * Build actor `actor_id`'s session. Called serially by the
     * orchestrator before any phase starts.
     *
     * @param actor_id Dense actor index.
     * @param seed Deterministic per-actor seed.
     * @param record Optional sink additionally fed this session's op
     *        stream (the co-run capture hook); may be nullptr.
     */
    virtual std::unique_ptr<ActorSession> startSession(
        uint64_t actor_id, uint64_t seed, TraceSink *record) = 0;
};

/**
 * Orchestrator-private per-actor state. Everything here is touched by
 * exactly one executor during a phase and only by the orchestrator
 * thread at phase barriers.
 */
struct ActorState
{
    uint64_t id = 0;
    uint64_t arrivalSeed = 0;         //!< per-actor arrival stream seed
    Rng requestRng{0};                //!< per-actor request stream
    std::unique_ptr<ActorSession> session;
    LatencyHistogram latency;         //!< current phase's recordings
    uint64_t phaseRequests = 0;       //!< requests in the current phase
    uint64_t phaseElapsedNs = 0;      //!< actor wall time in the phase
};

} // namespace wcrt

#endif // WCRT_LOADGEN_ACTOR_HH
