/**
 * @file
 * Phase declarations and results for the traffic engine.
 *
 * A load run is a sequence of phases (the genny Orchestrator idiom):
 * typically warmup -> steady -> spike -> drain. Each phase fixes its
 * per-actor request count up front — never a wall-clock duration — so
 * the op schedule of a run is a pure function of (specs, seed) and
 * the engine's outputs stay deterministic whatever the host speed or
 * worker interleaving. Time enters only through the recorded
 * latencies and the achieved-throughput summary.
 */

#ifndef WCRT_LOADGEN_PHASE_HH
#define WCRT_LOADGEN_PHASE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "loadgen/arrival.hh"
#include "loadgen/histogram.hh"

namespace wcrt {

/** One declared phase of a load run. */
struct PhaseSpec
{
    std::string name;          //!< "warmup", "steady", "spike", ...
    uint64_t opsPerActor = 0;  //!< requests each actor issues
    ArrivalSpec arrival;       //!< when those requests start
    bool record = true;        //!< false: run but discard metrics
};

/** Convenience constructors for the common shapes. */
PhaseSpec warmupPhase(uint64_t ops_per_actor);
PhaseSpec closedPhase(std::string name, uint64_t ops_per_actor,
                      double think_mean_ns = 0.0);
PhaseSpec poissonPhase(std::string name, uint64_t ops_per_actor,
                       double rate_per_actor_hz);
PhaseSpec tokenBucketPhase(std::string name, uint64_t ops_per_actor,
                           double rate_per_actor_hz, uint32_t burst);

/** Measured outcome of one phase, merged over all actors. */
struct PhaseStats
{
    std::string name;
    ArrivalKind arrival = ArrivalKind::ClosedLoop;
    uint64_t requests = 0;      //!< requests issued (all actors)
    uint64_t traceOps = 0;      //!< dynamic instructions emitted
    uint64_t elapsedNs = 0;     //!< wall time of the phase
    double offeredRateHz = 0;   //!< aggregate open-loop target (0=closed)
    LatencyHistogram latency;   //!< per-request latency, merged

    /** Aggregate achieved request throughput (requests / elapsed). */
    double achievedRateHz() const;
};

} // namespace wcrt

#endif // WCRT_LOADGEN_PHASE_HH
