/**
 * @file
 * Log-bucketed latency histogram (HDR-histogram idiom) for the
 * traffic engine's per-op latency path.
 *
 * Each actor owns one histogram and records into it without any
 * synchronization — the lock-free metrics path is "no sharing at
 * all": histograms merge at phase barriers, on the orchestrator
 * thread, after every actor of the phase has finished. record() is a
 * handful of arithmetic ops and one array increment, cheap enough to
 * sit inside a per-request timing loop without perturbing it.
 *
 * Bucketing follows the HDR scheme: values below 2^subBits land in
 * exact unit buckets; above that, each power-of-two octave is split
 * into 2^subBits sub-buckets, bounding the relative quantile error at
 * 2^-subBits (3.2% for the default 5 sub-bucket bits) across the full
 * uint64 range with a fixed, allocation-free footprint.
 */

#ifndef WCRT_LOADGEN_HISTOGRAM_HH
#define WCRT_LOADGEN_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wcrt {

/**
 * Fixed-size logarithmic histogram of non-negative 64-bit values
 * (nanoseconds, in the traffic engine's use).
 */
class LatencyHistogram
{
  public:
    /** @param sub_bits Sub-bucket bits per octave (error 2^-sub_bits). */
    explicit LatencyHistogram(uint32_t sub_bits = 5);

    /** Record one value. Not thread-safe: one owner per instance. */
    void record(uint64_t value);

    /** Fold another histogram (same sub_bits) into this one. */
    void merge(const LatencyHistogram &other);

    /** Drop all recorded values, keep the configuration. */
    void clear();

    uint64_t count() const { return total; }
    uint64_t minValue() const { return total ? minV : 0; }
    uint64_t maxValue() const { return maxV; }
    double mean() const;

    /**
     * Value at quantile q in [0, 1]: an upper bound of the bucket
     * holding the ceil(q * count)-th smallest recorded value, clamped
     * to the exact observed maximum. Within 2^-subBits relative error
     * of the true order statistic; 0 when empty.
     */
    uint64_t quantile(double q) const;

    uint32_t subBucketBits() const { return subBits; }

  private:
    size_t bucketOf(uint64_t value) const;

    /** Inclusive upper bound of the values mapping to bucket `i`. */
    uint64_t bucketUpper(size_t i) const;

    uint32_t subBits;
    uint64_t total = 0;
    uint64_t sum = 0;
    uint64_t minV = ~0ull;
    uint64_t maxV = 0;
    std::vector<uint64_t> buckets;
};

} // namespace wcrt

#endif // WCRT_LOADGEN_HISTOGRAM_HH
