#include "loadgen/arrival.hh"

#include <cmath>

#include "base/logging.hh"

namespace wcrt {

const char *
toString(ArrivalKind k)
{
    switch (k) {
      case ArrivalKind::ClosedLoop:
        return "closed";
      case ArrivalKind::PoissonOpen:
        return "poisson";
      case ArrivalKind::TokenBucket:
        return "token-bucket";
    }
    return "?";
}

namespace {

/** Exponential draw with the given mean (ns), capped away from inf. */
uint64_t
exponentialNs(Rng &rng, double mean_ns)
{
    // 1 - nextDouble() is in (0, 1], so the log is finite.
    double gap = -std::log(1.0 - rng.nextDouble()) * mean_ns;
    return static_cast<uint64_t>(gap);
}

} // namespace

ArrivalProcess::ArrivalProcess(const ArrivalSpec &spec, uint64_t seed)
    : spec(spec), rng(seed)
{
    if (openLoop() && !(spec.ratePerActorHz > 0.0))
        wcrt_fatal("open-loop arrival needs a positive rate, got ",
                   spec.ratePerActorHz);
    if (spec.kind == ArrivalKind::TokenBucket && spec.burst < 1)
        wcrt_fatal("token bucket needs burst >= 1");
}

uint64_t
ArrivalProcess::nextScheduleNs()
{
    const double mean_gap_ns = 1e9 / spec.ratePerActorHz;
    switch (spec.kind) {
      case ArrivalKind::PoissonOpen:
        clockNs += exponentialNs(rng, mean_gap_ns);
        break;
      case ArrivalKind::TokenBucket: {
        // Bucket starts full with `burst` tokens and refills one
        // every mean gap: request i is eligible once i - burst + 1
        // refills have happened, and never earlier than its
        // predecessor. The first `burst` requests go out at t = 0.
        uint64_t refill =
            issued + 1 > spec.burst
                ? static_cast<uint64_t>(
                      (issued + 1 - spec.burst) * mean_gap_ns)
                : 0;
        if (refill > clockNs)
            clockNs = refill;
        break;
      }
      case ArrivalKind::ClosedLoop:
        wcrt_fatal("closed-loop arrival has no schedule");
    }
    ++issued;
    return clockNs;
}

uint64_t
ArrivalProcess::nextThinkNs()
{
    if (spec.kind != ArrivalKind::ClosedLoop)
        wcrt_fatal("think time is a closed-loop concept");
    ++issued;
    if (!(spec.thinkMeanNs > 0.0))
        return 0;
    return exponentialNs(rng, spec.thinkMeanNs);
}

} // namespace wcrt
