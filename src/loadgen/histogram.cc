#include "loadgen/histogram.hh"

#include <bit>
#include <cmath>

#include "base/logging.hh"

namespace wcrt {

LatencyHistogram::LatencyHistogram(uint32_t sub_bits) : subBits(sub_bits)
{
    if (subBits < 1 || subBits > 16)
        wcrt_fatal("histogram sub-bucket bits out of range: ", subBits);
    // One unit-resolution bottom octave plus (64 - subBits) split
    // octaves covers every uint64 value.
    buckets.assign((64ull - subBits + 1) << subBits, 0);
}

size_t
LatencyHistogram::bucketOf(uint64_t value) const
{
    // Values below 2^subBits are exact; above, the top subBits bits
    // after the leading one select the sub-bucket within the octave.
    const uint32_t msb =
        static_cast<uint32_t>(std::bit_width(value | 1) - 1);
    if (msb < subBits)
        return static_cast<size_t>(value);
    const uint32_t octave = msb - subBits + 1;
    const uint64_t sub =
        (value >> (msb - subBits)) & ((1ull << subBits) - 1);
    return (static_cast<size_t>(octave) << subBits) +
           static_cast<size_t>(sub);
}

uint64_t
LatencyHistogram::bucketUpper(size_t i) const
{
    const uint64_t octave = i >> subBits;
    const uint64_t sub = i & ((1ull << subBits) - 1);
    if (octave == 0)
        return sub;
    // Octave o >= 1 holds values with msb == subBits + o - 1; the
    // sub-bucket spans 2^(o-1) consecutive values ending just before
    // the next sub-bucket's first value.
    const uint64_t width = 1ull << (octave - 1);
    const uint64_t base = ((1ull << subBits) + sub) * width;
    return base + width - 1;
}

void
LatencyHistogram::record(uint64_t value)
{
    ++buckets[bucketOf(value)];
    ++total;
    sum += value;
    if (value < minV)
        minV = value;
    if (value > maxV)
        maxV = value;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.subBits != subBits)
        wcrt_fatal("merging histograms with different sub-bucket bits");
    for (size_t i = 0; i < buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    total += other.total;
    sum += other.sum;
    if (other.total) {
        if (other.minV < minV)
            minV = other.minV;
        if (other.maxV > maxV)
            maxV = other.maxV;
    }
}

void
LatencyHistogram::clear()
{
    buckets.assign(buckets.size(), 0);
    total = 0;
    sum = 0;
    minV = ~0ull;
    maxV = 0;
}

double
LatencyHistogram::mean() const
{
    return total ? static_cast<double>(sum) / static_cast<double>(total)
                 : 0.0;
}

uint64_t
LatencyHistogram::quantile(double q) const
{
    if (total == 0)
        return 0;
    if (q <= 0.0)
        return minValue();
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    if (rank < 1)
        rank = 1;
    if (rank > total)
        rank = total;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank) {
            uint64_t upper = bucketUpper(i);
            return upper < maxV ? upper : maxV;
        }
    }
    return maxV;
}

} // namespace wcrt
