#include "loadgen/targets.hh"

#include <utility>

#include "base/logging.hh"
#include "datagen/datasets.hh"
#include "stack/kvstore/store.hh"
#include "stack/run_env.hh"
#include "stack/sql/vectorized.hh"
#include "trace/tracer.hh"
#include "workloads/registry.hh"

namespace wcrt {

namespace {

/** Op-count sink for sessions nobody wants a trace from. */
class CountingSink : public TraceSink
{
  public:
    void consume(const MicroOp &) override { ++ops; }
    void consumeBatch(const OpBlockView &batch) override
    {
        ops += batch.count;
    }
    uint64_t ops = 0;
};

/**
 * Session scaffolding shared by the concrete targets: a private
 * RunEnv, a sink (counting, or the caller's recorder) and a Tracer.
 * Subclass constructors register their code regions against env.layout
 * before buildTracer().
 */
class SessionBase : public ActorSession
{
  public:
    explicit SessionBase(TraceSink *record) : record(record) {}

    uint64_t traceOps() const override { return tracer->opCount(); }

  protected:
    /** Call once the session's code layout is fully registered. */
    void
    buildTracer()
    {
        tracer = std::make_unique<Tracer>(
            env.layout, record ? *record : counting);
    }

    RunEnv env;
    std::unique_ptr<Tracer> tracer;

  private:
    CountingSink counting;
    TraceSink *record;
};

// ---------------------------------------------------------------- kv-get

/** The H-Read region server as a per-request target. */
class KvGetTarget : public TrafficTarget
{
  public:
    KvGetTarget(double scale, uint64_t seed)
        : catalog(heap, scale, seed), data(catalog.profSearch()),
          zipf(data.keys.size(), 0.9)
    {
    }

    std::string name() const override { return "kv-get"; }

    std::unique_ptr<ActorSession> startSession(
        uint64_t, uint64_t, TraceSink *record) override
    {
        return std::make_unique<Session>(*this, record);
    }

  private:
    class Session : public SessionBase
    {
      public:
        Session(const KvGetTarget &t, TraceSink *record)
            : SessionBase(record), target(t),
              store(env.layout, t.data)
        {
            buildTracer();
        }

        void
        request(Rng &rng) override
        {
            store.get(*tracer, env, target.zipf.sample(rng));
        }

      private:
        const KvGetTarget &target;
        KvStore store;
    };

    VirtualHeap heap;  //!< owns the shared dataset's addresses
    DatasetCatalog catalog;
    KvDataset data;        //!< immutable once built
    ZipfSampler zipf;      //!< const; sample() takes the actor rng
};

// ------------------------------------------------------------- sql-filter

/** A vectorized filter + project query as a per-request target. */
class SqlFilterTarget : public TrafficTarget
{
  public:
    SqlFilterTarget(double scale, uint64_t seed)
        : catalog(heap, scale, seed), orders(catalog.ecommerceOrders())
    {
        allRows.reserve(orders.rows);
        for (uint64_t r = 0; r < orders.rows; ++r)
            allRows.push_back(r);
    }

    std::string name() const override { return "sql-filter"; }

    std::unique_ptr<ActorSession> startSession(
        uint64_t, uint64_t, TraceSink *record) override
    {
        return std::make_unique<Session>(*this, record);
    }

  private:
    class Session : public SessionBase
    {
      public:
        Session(const SqlFilterTarget &t, TraceSink *record)
            : SessionBase(record), target(t), engine(env.layout)
        {
            buildTracer();
        }

        void
        request(Rng &rng) override
        {
            // SELECT order_id, amount FROM orders WHERE amount > x —
            // x drawn per request, so selectivity (and the projected
            // row count) varies with the request stream.
            double threshold = 1.0 + rng.nextDouble() * 500.0;
            Selection sel = engine.filterFloat64(
                env, *tracer, target.orders, "amount", target.allRows,
                [threshold](double v) { return v > threshold; });
            engine.project(env, *tracer, target.orders,
                           {"order_id", "amount"}, sel);
        }

      private:
        const SqlFilterTarget &target;
        VectorizedEngine engine;
    };

    VirtualHeap heap;
    DatasetCatalog catalog;
    DataTable orders;       //!< immutable once built
    Selection allRows;      //!< the scan-everything selection
};

// -------------------------------------------------------- workload:<name>

/** Any registry entry as a macro-request (one execute() per request). */
class WorkloadTarget : public TrafficTarget
{
  public:
    WorkloadTarget(const WorkloadEntry &entry, double scale)
        : entry(entry), scale(scale)
    {
    }

    std::string name() const override
    {
        return "workload:" + entry.name;
    }

    std::unique_ptr<ActorSession> startSession(
        uint64_t, uint64_t, TraceSink *record) override
    {
        return std::make_unique<Session>(entry, scale, record);
    }

  private:
    class Session : public SessionBase
    {
      public:
        Session(const WorkloadEntry &entry, double scale,
                TraceSink *record)
            : SessionBase(record), workload(entry.make(scale))
        {
            workload->setup(env);
            buildTracer();
        }

        void
        request(Rng &) override
        {
            // A request is one job submission; the workload's own
            // seeded generators decide its op stream.
            workload->execute(env, *tracer);
        }

      private:
        WorkloadPtr workload;
    };

    const WorkloadEntry &entry;
    double scale;
};

} // namespace

const std::vector<std::string> &
trafficTargetNames()
{
    static const std::vector<std::string> names = {"kv-get",
                                                   "sql-filter"};
    return names;
}

std::unique_ptr<TrafficTarget>
makeTrafficTarget(const std::string &name, double scale, uint64_t seed)
{
    if (name == "kv-get")
        return std::make_unique<KvGetTarget>(scale, seed);
    if (name == "sql-filter")
        return std::make_unique<SqlFilterTarget>(scale, seed);
    constexpr const char *prefix = "workload:";
    if (name.rfind(prefix, 0) == 0) {
        const WorkloadEntry &entry =
            findWorkload(name.substr(std::string(prefix).size()));
        return std::make_unique<WorkloadTarget>(entry, scale);
    }
    wcrt_fatal("unknown traffic target: ", name,
               " (try kv-get, sql-filter or workload:<roster name>)");
    return nullptr;
}

} // namespace wcrt
