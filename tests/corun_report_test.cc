/**
 * @file
 * Tests for the shared-LLC co-run model and the analyzer report
 * rendering (PCA scatter, cluster profiles, CSV export).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "base/rng.hh"
#include "core/report.hh"
#include "sim/corun.hh"

namespace wcrt {
namespace {

/** Synthetic trace streaming over `bytes` of data, `n` ops. */
std::vector<MicroOp>
streamTrace(uint64_t base, uint64_t bytes, size_t n)
{
    std::vector<MicroOp> trace;
    trace.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        MicroOp op;
        op.pc = 0x400000 + (i % 256) * 4;
        op.kind = OpKind::Load;
        op.memAddr = base + (i * 64) % bytes;
        op.memSize = 8;
        trace.push_back(op);
    }
    return trace;
}

MachineConfig
smallL3Machine(uint64_t l3_bytes)
{
    MachineConfig m = xeonE5645();
    m.l3.sizeBytes = l3_bytes;
    return m;
}

TEST(CoRun, NoInterferenceWhenBothFit)
{
    // Two 256 KB working sets in a 4 MB L3: solo == shared.
    auto a = streamTrace(0x10000000, 256 * 1024, 60000);
    auto b = streamTrace(0x20000000, 256 * 1024, 60000);
    CoRunResult r = coRun(smallL3Machine(4 * 1024 * 1024), a, b);
    EXPECT_NEAR(r.a.degradation(), 1.0, 0.05);
    EXPECT_NEAR(r.b.degradation(), 1.0, 0.05);
}

TEST(CoRun, ContentionWhenCombinedSetOverflows)
{
    // Each working set fits a 2 MB L3 alone; together they thrash it.
    auto a = streamTrace(0x10000000, 1536 * 1024, 120000);
    auto b = streamTrace(0x20000000, 1536 * 1024, 120000);
    CoRunResult r = coRun(smallL3Machine(2 * 1024 * 1024), a, b);
    EXPECT_GT(r.a.degradation(), 1.5);
    EXPECT_GT(r.b.degradation(), 1.5);
    EXPECT_GT(r.snoopHits, 0u);
}

TEST(CoRun, AsymmetricVictim)
{
    // A small cache-friendly lane next to a streaming lane: the
    // small lane suffers, the streamer barely changes.
    auto small_lane = streamTrace(0x10000000, 1024 * 1024, 60000);
    auto big = streamTrace(0x20000000, 16 * 1024 * 1024, 120000);
    CoRunResult r = coRun(smallL3Machine(2 * 1024 * 1024), small_lane, big);
    EXPECT_GT(r.a.degradation(), 1.2);
    EXPECT_NEAR(r.b.degradation(), 1.0, 0.2);
}

TEST(CoRun, LaneStatsCountInstructions)
{
    auto a = streamTrace(0x10000000, 64 * 1024, 5000);
    auto b = streamTrace(0x20000000, 64 * 1024, 10000);
    CoRunResult r = coRun(xeonE5645(), a, b);
    EXPECT_EQ(r.a.instructions, 5000u);
    EXPECT_EQ(r.b.instructions, 10000u);
}

SubsetReport
tinyReport(std::vector<std::string> &names,
           std::vector<MetricVector> &metrics)
{
    Rng rng(3);
    for (int proto = 0; proto < 3; ++proto) {
        for (int i = 0; i < 4; ++i) {
            // std::string(1, ...) sidesteps a GCC 12 -O3 -Wrestrict
            // false positive on concatenating short literals.
            names.push_back(std::string(1, 'w') + std::to_string(proto) +
                            std::string(1, '_') + std::to_string(i));
            MetricVector v{};
            for (size_t m = 0; m < numMetrics; ++m)
                v[m] = proto * 10.0 + 0.1 * rng.nextGaussian() +
                       (m % 3 == static_cast<size_t>(proto % 3) ? 5.0
                                                                : 0.0);
            metrics.push_back(v);
        }
    }
    AnalyzerOptions opts;
    opts.clusters = 3;
    return reduceWorkloads(names, metrics, opts);
}

TEST(Report, ScatterRendersEverySample)
{
    std::vector<std::string> names;
    std::vector<MetricVector> metrics;
    SubsetReport report = tinyReport(names, metrics);
    std::ostringstream os;
    printPcaScatter(os, report, names, 40, 12);
    std::string plot = os.str();
    // The frame and at least one representative letter must appear.
    EXPECT_NE(plot.find('+'), std::string::npos);
    EXPECT_TRUE(plot.find('A') != std::string::npos ||
                plot.find('B') != std::string::npos ||
                plot.find('C') != std::string::npos);
}

TEST(Report, ClusterProfilesNameTopTraits)
{
    std::vector<std::string> names;
    std::vector<MetricVector> metrics;
    SubsetReport report = tinyReport(names, metrics);
    std::ostringstream os;
    printClusterProfiles(os, report, names, metrics, 2);
    std::string text = os.str();
    EXPECT_NE(text.find("sd"), std::string::npos);  // z-score units
    // All three representatives appear.
    for (const auto &c : report.clusters)
        EXPECT_NE(text.find(c.representative), std::string::npos);
}

TEST(Report, CsvIsRectangular)
{
    std::vector<std::string> names;
    std::vector<MetricVector> metrics;
    tinyReport(names, metrics);
    std::ostringstream os;
    writeMetricsCsv(os, names, metrics);
    std::istringstream in(os.str());
    std::string line;
    size_t rows = 0;
    size_t expected_commas = numMetrics;
    while (std::getline(in, line)) {
        size_t commas =
            static_cast<size_t>(std::count(line.begin(), line.end(),
                                           ','));
        EXPECT_EQ(commas, expected_commas) << line;
        ++rows;
    }
    EXPECT_EQ(rows, names.size() + 1);  // header + samples
}

} // namespace
} // namespace wcrt
