/**
 * @file
 * Unit tests for the BDGS-style data generators: determinism, scale
 * behaviour, statistical character (Zipf skew, heavy-tailed degrees)
 * and trace-address consistency.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/strings.hh"
#include "datagen/datasets.hh"
#include "datagen/graph.hh"
#include "datagen/table.hh"
#include "datagen/text.hh"

namespace wcrt {
namespace {

TEST(TextGenerator, DeterministicForSeed)
{
    TextGenOptions o;
    o.seed = 42;
    VirtualHeap h1, h2;
    TextCorpus a = TextGenerator(o).generate(h1, "a", 20);
    TextCorpus b = TextGenerator(o).generate(h2, "b", 20);
    ASSERT_EQ(a.docs.size(), b.docs.size());
    for (size_t i = 0; i < a.docs.size(); ++i)
        EXPECT_EQ(a.docs[i], b.docs[i]);
}

TEST(TextGenerator, WordFrequencyIsZipfian)
{
    TextGenOptions o;
    o.vocabulary = 2000;
    o.zipfSkew = 1.1;
    o.wordsPerDoc = 500;
    VirtualHeap heap;
    TextCorpus corpus = TextGenerator(o).generate(heap, "z", 100);

    std::map<std::string, uint64_t> freq;
    for (const auto &doc : corpus.docs)
        for (const auto &w : splitWhitespace(doc))
            ++freq[w];
    // Top word should dominate: much more frequent than the median.
    std::vector<uint64_t> counts;
    for (const auto &[w, c] : freq)
        counts.push_back(c);
    std::sort(counts.rbegin(), counts.rend());
    ASSERT_GT(counts.size(), 100u);
    EXPECT_GT(counts[0], 8 * counts[counts.size() / 2]);
}

TEST(TextGenerator, DocAddressesAreDisjointAndOrdered)
{
    TextGenOptions o;
    VirtualHeap heap;
    TextCorpus corpus = TextGenerator(o).generate(heap, "d", 10);
    for (size_t i = 1; i < corpus.docs.size(); ++i) {
        EXPECT_GE(corpus.docAddr(i),
                  corpus.docAddr(i - 1) + corpus.docs[i - 1].size());
    }
    EXPECT_GE(corpus.totalBytes, corpus.docs[0].size());
}

TEST(GraphGenerator, DegreeDistributionIsHeavyTailed)
{
    GraphGenOptions o;
    o.edgesPerNode = 6;
    VirtualHeap heap;
    Graph g = GraphGenerator(o).generate(heap, "g", 4000);

    uint64_t max_deg = 0;
    uint64_t sum_deg = 0;
    // In-degree tail: count how many edges the most-linked node gets.
    std::vector<uint64_t> indeg(g.numNodes, 0);
    for (auto t : g.targets)
        ++indeg[t];
    for (auto d : indeg) {
        max_deg = std::max(max_deg, d);
        sum_deg += d;
    }
    double avg = static_cast<double>(sum_deg) / g.numNodes;
    // Preferential attachment: the hub collects far more than average.
    EXPECT_GT(static_cast<double>(max_deg), 10.0 * avg);
}

TEST(GraphGenerator, CsrIsConsistent)
{
    GraphGenOptions o;
    VirtualHeap heap;
    Graph g = GraphGenerator(o).generate(heap, "g", 500);
    ASSERT_EQ(g.offsets.size(), g.numNodes + 1u);
    EXPECT_EQ(g.offsets.front(), 0u);
    EXPECT_EQ(g.offsets.back(), g.numEdges());
    for (uint32_t v = 0; v < g.numNodes; ++v) {
        EXPECT_LE(g.offsets[v], g.offsets[v + 1]);
        for (uint64_t e = 0; e < g.outDegree(v); ++e)
            EXPECT_LT(g.targets[g.offsets[v] + e], g.numNodes);
    }
}

TEST(GraphGenerator, NodeAndEdgeAddressesValid)
{
    GraphGenOptions o;
    VirtualHeap heap;
    Graph g = GraphGenerator(o).generate(heap, "g", 100);
    EXPECT_EQ(g.nodeAddr(0), g.nodeRegion.base);
    EXPECT_EQ(g.nodeAddr(5), g.nodeRegion.base + 40);
    for (uint32_t v = 0; v < g.numNodes; ++v) {
        if (g.outDegree(v) > 0) {
            EXPECT_GE(g.edgeAddr(v, 0), g.edgeRegion.base);
        }
    }
}

TEST(TableGenerator, EcommerceSchemasMatchTable1)
{
    VirtualHeap heap;
    TableGenerator gen(7);
    DataTable orders = gen.ecommerceOrders(heap, 100);
    DataTable items = gen.ecommerceItems(heap, 300, 100);
    EXPECT_EQ(orders.columns.size(), 4u);  // Table 1: 4 columns
    EXPECT_EQ(items.columns.size(), 6u);   // Table 2: 6 columns
    EXPECT_EQ(orders.rows, 100u);
    EXPECT_EQ(items.rows, 300u);
}

TEST(TableGenerator, ForeignKeysStayInRange)
{
    VirtualHeap heap;
    TableGenerator gen(7);
    DataTable items = gen.ecommerceItems(heap, 500, 100);
    for (int64_t oid : items.column("order_id").ints) {
        EXPECT_GE(oid, 1);
        EXPECT_LE(oid, 100);
    }
}

TEST(TableGenerator, ProfSearchRecordsSortedAndSized)
{
    VirtualHeap heap;
    KvDataset kv = TableGenerator(7).profSearchResumes(heap, 200);
    ASSERT_EQ(kv.keys.size(), 200u);
    EXPECT_EQ(kv.valueBytes, 1128u);  // the paper's record size
    for (size_t i = 1; i < kv.keys.size(); ++i)
        EXPECT_LT(kv.keys[i - 1], kv.keys[i]);
    for (const auto &v : kv.values)
        EXPECT_EQ(v.size(), 1128u);
}

TEST(TableGenerator, TpcdsStarSchemaJoins)
{
    VirtualHeap heap;
    TableGenerator gen(7);
    DataTable sales = gen.tpcdsWebSales(heap, 1000);
    DataTable dates = gen.tpcdsDateDim(heap, 1461);
    DataTable items = gen.tpcdsItemDim(heap, 18000);
    // Every fact-table key must resolve against its dimension.
    for (int64_t d : sales.column("ws_sold_date_sk").ints)
        EXPECT_LT(d, static_cast<int64_t>(dates.rows));
    for (int64_t i : sales.column("ws_item_sk").ints)
        EXPECT_LT(i, static_cast<int64_t>(items.rows));
}

TEST(DataTable, CellAddressesRespectColumnRegions)
{
    VirtualHeap heap;
    DataTable orders = TableGenerator(7).ecommerceOrders(heap, 64);
    size_t c = orders.columnIndex("buyer_id");
    uint64_t a0 = orders.cellAddr(c, 0);
    uint64_t a1 = orders.cellAddr(c, 1);
    EXPECT_EQ(a1 - a0, 8u);
    EXPECT_EQ(a0, orders.columnRegions[c].base);
}

TEST(DatasetCatalog, ScaleChangesRecordCounts)
{
    VirtualHeap h1, h2;
    DatasetCatalog small(h1, 0.25), big(h2, 1.0);
    EXPECT_LT(small.wikipedia().docs.size(),
              big.wikipedia().docs.size());
    EXPECT_LT(small.profSearch().keys.size(),
              big.profSearch().keys.size());
}

TEST(DatasetCatalog, SevenInfosMatchPaper)
{
    const auto &infos = datasetInfos();
    ASSERT_EQ(infos.size(), 7u);
    EXPECT_STREQ(infos[0].name, "Wikipedia Entries");
    EXPECT_STREQ(infos[6].generator, "TPC DSGen");
}

TEST(DatasetCatalog, FacebookDenserThanGoogle)
{
    VirtualHeap heap;
    DatasetCatalog catalog(heap, 0.5);
    Graph google = catalog.googleWebGraph();
    Graph facebook = catalog.facebookGraph();
    double g_avg = static_cast<double>(google.numEdges()) /
                   google.numNodes;
    double f_avg = static_cast<double>(facebook.numEdges()) /
                   facebook.numNodes;
    // The paper's Facebook graph is ~4x denser than the web graph.
    EXPECT_GT(f_avg, 2.0 * g_avg);
}

} // namespace
} // namespace wcrt
