/**
 * @file
 * Unit tests for the linear-algebra / clustering module: matrix ops,
 * z-scoring, Jacobi eigendecomposition, PCA and k-means.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "stats/kmeans.hh"
#include "stats/matrix.hh"
#include "stats/pca.hh"

namespace wcrt {
namespace {

TEST(Matrix, MultiplyIdentity)
{
    Matrix m = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix r = m.multiply(Matrix::identity(2));
    EXPECT_DOUBLE_EQ(r.at(0, 0), 1);
    EXPECT_DOUBLE_EQ(r.at(1, 1), 4);
}

TEST(Matrix, MultiplyKnownProduct)
{
    Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    Matrix b = Matrix::fromRows({{7, 8}, {9, 10}, {11, 12}});
    Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 58);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 64);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 139);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 154);
}

TEST(Matrix, TransposeRoundTrip)
{
    Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t.at(2, 1), 6);
    EXPECT_NEAR(t.transposed().distance(a), 0.0, 1e-15);
}

TEST(Matrix, RowAndColExtraction)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    EXPECT_EQ(a.row(1), (std::vector<double>{3, 4}));
    EXPECT_EQ(a.col(0), (std::vector<double>{1, 3}));
}

TEST(Zscore, NormalizesColumns)
{
    Matrix m = Matrix::fromRows({{1, 100}, {2, 200}, {3, 300}});
    Normalized n = zscore(m);
    for (size_t c = 0; c < 2; ++c) {
        double mean = 0, var = 0;
        for (size_t r = 0; r < 3; ++r)
            mean += n.data.at(r, c);
        mean /= 3;
        for (size_t r = 0; r < 3; ++r)
            var += std::pow(n.data.at(r, c) - mean, 2);
        var /= 3;
        EXPECT_NEAR(mean, 0.0, 1e-12);
        EXPECT_NEAR(var, 1.0, 1e-12);
    }
}

TEST(Zscore, ConstantColumnBecomesZeros)
{
    Matrix m = Matrix::fromRows({{5, 1}, {5, 2}, {5, 3}});
    Normalized n = zscore(m);
    for (size_t r = 0; r < 3; ++r)
        EXPECT_DOUBLE_EQ(n.data.at(r, 0), 0.0);
}

TEST(Jacobi, DiagonalizesKnownMatrix)
{
    // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
    Matrix m = Matrix::fromRows({{2, 1}, {1, 2}});
    EigenResult e = jacobiEigen(m);
    ASSERT_EQ(e.values.size(), 2u);
    EXPECT_NEAR(e.values[0], 3.0, 1e-10);
    EXPECT_NEAR(e.values[1], 1.0, 1e-10);
}

TEST(Jacobi, EigenvectorsSatisfyDefinition)
{
    Matrix m = Matrix::fromRows({{4, 1, 0}, {1, 3, 1}, {0, 1, 2}});
    EigenResult e = jacobiEigen(m);
    for (size_t k = 0; k < 3; ++k) {
        // Check ||A v - lambda v|| ~ 0.
        for (size_t r = 0; r < 3; ++r) {
            double av = 0;
            for (size_t c = 0; c < 3; ++c)
                av += m.at(r, c) * e.vectors.at(c, k);
            EXPECT_NEAR(av, e.values[k] * e.vectors.at(r, k), 1e-8);
        }
    }
}

TEST(Pca, ExplainsVarianceOnCorrelatedData)
{
    // Two strongly correlated columns plus one noise column: the first
    // PC should dominate.
    Rng rng(5);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 200; ++i) {
        double t = rng.nextGaussian();
        rows.push_back({t, t + 0.01 * rng.nextGaussian(),
                        0.1 * rng.nextGaussian()});
    }
    Normalized n = zscore(Matrix::fromRows(rows));
    PcaModel pca = fitPca(n.data, 0.9);
    EXPECT_GE(pca.explained[0], 0.6);
    EXPECT_LE(pca.retained, 2u);
}

TEST(Pca, ProjectionHasRequestedDimensions)
{
    Rng rng(6);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 50; ++i)
        rows.push_back({rng.nextDouble(), rng.nextDouble(),
                        rng.nextDouble(), rng.nextDouble()});
    Normalized n = zscore(Matrix::fromRows(rows));
    PcaModel pca = fitPca(n.data, 1.0);
    Matrix proj = pca.project(n.data);
    EXPECT_EQ(proj.rows(), 50u);
    EXPECT_EQ(proj.cols(), pca.retained);
}

TEST(Pca, EigenvaluesDescending)
{
    Rng rng(7);
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < 100; ++i)
        rows.push_back({rng.nextGaussian(), rng.nextGaussian(),
                        rng.nextGaussian()});
    Normalized n = zscore(Matrix::fromRows(rows));
    PcaModel pca = fitPca(n.data, 1.0);
    for (size_t i = 1; i < pca.eigenvalues.size(); ++i)
        EXPECT_GE(pca.eigenvalues[i - 1], pca.eigenvalues[i] - 1e-12);
}

Matrix
threeBlobs(int per_cluster, Rng &rng)
{
    std::vector<std::vector<double>> rows;
    const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
    for (int c = 0; c < 3; ++c)
        for (int i = 0; i < per_cluster; ++i)
            rows.push_back({centers[c][0] + 0.5 * rng.nextGaussian(),
                            centers[c][1] + 0.5 * rng.nextGaussian()});
    return Matrix::fromRows(rows);
}

TEST(KMeans, RecoversWellSeparatedClusters)
{
    Rng rng(11);
    Matrix data = threeBlobs(30, rng);
    KMeansResult r = kMeans(data, 3);
    EXPECT_TRUE(r.converged);
    // All members of an original blob must share a label.
    for (int c = 0; c < 3; ++c) {
        size_t label = r.assignment[static_cast<size_t>(c) * 30];
        for (int i = 0; i < 30; ++i)
            EXPECT_EQ(r.assignment[static_cast<size_t>(c) * 30 + i],
                      label);
    }
    // And the three labels are distinct.
    EXPECT_NE(r.assignment[0], r.assignment[30]);
    EXPECT_NE(r.assignment[30], r.assignment[60]);
}

TEST(KMeans, RepresentativesAreClusterMembers)
{
    Rng rng(13);
    Matrix data = threeBlobs(20, rng);
    KMeansResult r = kMeans(data, 3);
    auto reps = r.representatives(data);
    ASSERT_EQ(reps.size(), 3u);
    for (size_t ci = 0; ci < 3; ++ci)
        EXPECT_EQ(r.assignment[reps[ci]], ci);
}

TEST(KMeans, KEqualsNGivesSingletons)
{
    Matrix data = Matrix::fromRows({{0, 0}, {5, 5}, {9, 1}});
    KMeansResult r = kMeans(data, 3);
    EXPECT_NEAR(r.wcss, 0.0, 1e-18);
    for (auto s : r.sizes)
        EXPECT_EQ(s, 1u);
}

TEST(KMeans, WcssDecreasesWithK)
{
    Rng rng(17);
    Matrix data = threeBlobs(25, rng);
    double w1 = kMeans(data, 1).wcss;
    double w3 = kMeans(data, 3).wcss;
    double w6 = kMeans(data, 6).wcss;
    EXPECT_GT(w1, w3);
    EXPECT_GE(w3, w6);
}

TEST(KMeans, DeterministicForSeed)
{
    Rng rng(19);
    Matrix data = threeBlobs(15, rng);
    KMeansResult a = kMeans(data, 3);
    KMeansResult b = kMeans(data, 3);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.wcss, b.wcss);
}

TEST(Silhouette, HighForSeparatedLowForMerged)
{
    Rng rng(23);
    Matrix data = threeBlobs(20, rng);
    KMeansResult good = kMeans(data, 3);
    double s_good = silhouette(data, good.assignment, 3);
    EXPECT_GT(s_good, 0.7);

    KMeansResult coarse = kMeans(data, 2);
    double s_coarse = silhouette(data, coarse.assignment, 2);
    EXPECT_GT(s_good, s_coarse);
}

} // namespace
} // namespace wcrt
