/**
 * @file
 * Unit tests for the foundation module: rng, samplers, summaries,
 * histograms, tables, string helpers and the shared worker pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "base/rng.hh"
#include "base/strings.hh"
#include "base/summary.hh"
#include "base/table.hh"
#include "base/worker_pool.hh"

namespace wcrt {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextRangeCoversEndpoints)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextRange(-3, 3));
    EXPECT_TRUE(seen.count(-3));
    EXPECT_TRUE(seen.count(3));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMomentsAreSane)
{
    Rng rng(13);
    Summary s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.nextGaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianWithParamsShiftsAndScales)
{
    Rng rng(17);
    Summary s;
    for (int i = 0; i < 50000; ++i)
        s.add(rng.nextGaussian(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(19);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto original = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, original);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(23);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Zipf, SkewFavorsLowRanks)
{
    Rng rng(29);
    ZipfSampler zipf(1000, 1.0);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, ZeroSkewIsUniform)
{
    Rng rng(31);
    ZipfSampler zipf(10, 0.0);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[zipf.sample(rng)];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 600);
}

TEST(Zipf, PmfSumsToOne)
{
    ZipfSampler zipf(100, 1.2);
    double sum = 0.0;
    for (size_t i = 0; i < zipf.size(); ++i)
        sum += zipf.pmf(i);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(Summary, MergeMatchesSequential)
{
    Summary all, a, b;
    Rng rng(37);
    for (int i = 0; i < 1000; ++i) {
        double x = rng.nextGaussian(3.0, 7.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, EmptyIsWellDefined)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_TRUE(std::isinf(s.min()));
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    h.add(42.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, QuantileApproximatesMedian)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 1000; ++i)
        h.add(static_cast<double>(i % 100));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
}

TEST(Table, AlignsAndCounts)
{
    Table t({"name", "value"});
    t.cell("alpha").cell(1.5).endRow();
    t.cell("b").cell(uint64_t{42}).endRow();
    EXPECT_EQ(t.rows(), 2u);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("alpha"), std::string::npos);
    EXPECT_NE(os.str().find("1.50"), std::string::npos);
}

TEST(Table, CsvQuotesSpecials)
{
    Table t({"a", "b"});
    t.addRow({"x,y", "q\"z"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
    EXPECT_NE(os.str().find("\"q\"\"z\""), std::string::npos);
}

TEST(Strings, SplitAndJoin)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, "|"), "a|b||c");
}

TEST(Strings, SplitWhitespaceDropsEmpties)
{
    auto parts = splitWhitespace("  hello   world \t foo\n");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "hello");
    EXPECT_EQ(parts[2], "foo");
}

TEST(Strings, ToLowerAndPrefix)
{
    EXPECT_EQ(toLower("HeLLo"), "hello");
    EXPECT_TRUE(startsWith("wordcount", "word"));
    EXPECT_FALSE(startsWith("word", "wordcount"));
}

TEST(Strings, FnvIsStable)
{
    EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
    EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
    // Known FNV-1a vector.
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
}

TEST(WorkerPool, HardwareWorkersIsPositive)
{
    // hardware_concurrency() may report 0 (unknown) or 1 (single
    // core); the resolved count must always admit at least the
    // calling thread as an executor.
    EXPECT_GE(WorkerPool::hardwareWorkers(), 1u);
}

TEST(WorkerPool, SharedPoolIsOneInstance)
{
    EXPECT_EQ(&WorkerPool::shared(), &WorkerPool::shared());
}

TEST(WorkerPool, RunBoundedExecutesEveryIndexOnce)
{
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    WorkerPool::shared().runBounded(kCount, 4, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkerPool, RunBoundedCapOneStaysOnCaller)
{
    // cap <= 1 must never queue a ticket: the strictly serial fast
    // path runs every job on the calling thread, in index order.
    std::vector<std::thread::id> seen;
    WorkerPool::shared().runBounded(64, 1, [&](size_t i) {
        EXPECT_EQ(seen.size(), i);
        seen.push_back(std::this_thread::get_id());
    });
    ASSERT_EQ(seen.size(), 64u);
    for (const auto &id : seen)
        EXPECT_EQ(id, std::this_thread::get_id());
}

TEST(WorkerPool, RunBoundedRespectsExecutorCap)
{
    // A cap of 2 admits the caller plus at most one pool thread: the
    // high-water mark of concurrently running jobs must not pass 2
    // even when many more pool threads sit idle.
    std::atomic<int> running{0};
    std::atomic<int> high_water{0};
    WorkerPool::shared().runBounded(256, 2, [&](size_t) {
        int now = running.fetch_add(1, std::memory_order_acq_rel) + 1;
        int seen = high_water.load(std::memory_order_relaxed);
        while (now > seen &&
               !high_water.compare_exchange_weak(seen, now)) {
        }
        running.fetch_sub(1, std::memory_order_acq_rel);
    });
    EXPECT_LE(high_water.load(), 2);
    EXPECT_GE(high_water.load(), 1);
}

TEST(WorkerPool, NestedRunBoundedDoesNotDeadlock)
{
    // A job running on the shared pool may itself fan out on the
    // shared pool (a sweep inside a pooled replay). The inner wait()
    // helps with its own ticket's indices, so progress never depends
    // on a free pool thread.
    constexpr size_t kOuter = 8;
    constexpr size_t kInner = 32;
    std::atomic<size_t> total{0};
    WorkerPool::shared().runBounded(kOuter, 4, [&](size_t) {
        WorkerPool::shared().runBounded(kInner, 4, [&](size_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(total.load(), kOuter * kInner);
}

} // namespace
} // namespace wcrt
