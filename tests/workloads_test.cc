/**
 * @file
 * Integration tests over the workloads and the profiler: registry
 * integrity, end-to-end runs, the paper's headline orderings (L1I by
 * stack depth, service worst front-end) and data behaviours.
 */

#include <gtest/gtest.h>

#include <set>

#include "baselines/baselines.hh"
#include "core/profiler.hh"
#include "workloads/ml_workloads.hh"
#include "workloads/registry.hh"
#include "workloads/text_workloads.hh"

namespace wcrt {
namespace {

constexpr double testScale = 0.15;

WorkloadRun
runByName(const std::string &name, double scale = testScale)
{
    WorkloadPtr w = findWorkload(name).make(scale);
    return profileWorkload(*w, xeonE5645());
}

TEST(Registry, SeventeenRepresentativesInTable2Order)
{
    const auto &reps = representativeWorkloads();
    ASSERT_EQ(reps.size(), 17u);
    EXPECT_EQ(reps[0].name, "H-Read");
    EXPECT_EQ(reps[4].name, "S-WordCount");
    EXPECT_EQ(reps[16].name, "S-Sort");
    for (size_t i = 0; i < reps.size(); ++i)
        EXPECT_EQ(reps[i].table2Id, static_cast<int>(i + 1));
    // The "(n)" cluster sizes sum to 77.
    int total = 0;
    for (const auto &e : reps)
        total += e.represents;
    EXPECT_EQ(total, 77);
}

TEST(Registry, SixMpiWorkloads)
{
    const auto &mpi = mpiWorkloads();
    ASSERT_EQ(mpi.size(), 6u);
    std::set<std::string> names;
    for (const auto &e : mpi) {
        EXPECT_EQ(e.name.substr(0, 2), "M-");
        names.insert(e.name);
    }
    EXPECT_EQ(names.size(), 6u);
}

TEST(Registry, RosterHas77UniqueEntries)
{
    const auto &roster = fullRoster();
    ASSERT_EQ(roster.size(), 77u);
    std::set<std::string> names;
    for (const auto &e : roster)
        names.insert(e.name);
    EXPECT_EQ(names.size(), 77u);
}

TEST(Registry, FindWorkloadLocatesAllLists)
{
    EXPECT_EQ(findWorkload("H-Read").name, "H-Read");
    EXPECT_EQ(findWorkload("M-Kmeans").name, "M-Kmeans");
    EXPECT_EQ(findWorkload("S-WordCount@amazon").name,
              "S-WordCount@amazon");
}

TEST(Workloads, EveryRepresentativeRunsAndMeasures)
{
    for (const auto &entry : representativeWorkloads()) {
        WorkloadPtr w = entry.make(testScale);
        WorkloadRun run = profileWorkload(*w, xeonE5645());
        EXPECT_GT(run.report.instructions, 1000u) << entry.name;
        EXPECT_GT(run.report.ipc, 0.05) << entry.name;
        EXPECT_LT(run.report.ipc, 4.0) << entry.name;
        EXPECT_GT(run.data.inputBytes, 0u) << entry.name;
    }
}

TEST(Workloads, StackDepthOrdersL1iMisses)
{
    // The paper's Section 5.5 headline as an invariant: for the same
    // algorithm, L1I MPKI follows MPI < Hadoop and MPI < Spark.
    for (const char *mpi_name : {"M-WordCount", "M-Sort"}) {
        std::string algo = std::string(mpi_name).substr(2);
        WorkloadRun m = runByName(mpi_name, 0.3);
        WorkloadRun h = runByName("H-" + algo + "@wiki", 0.3);
        WorkloadRun s = runByName("S-" + algo + "@wiki", 0.3);
        EXPECT_LT(m.report.l1iMpki, h.report.l1iMpki) << algo;
        EXPECT_LT(m.report.l1iMpki, s.report.l1iMpki) << algo;
    }
}

TEST(Workloads, ServiceHasWorstFrontEnd)
{
    WorkloadRun service = runByName("H-Read", 0.3);
    WorkloadRun analysis = runByName("H-WordCount", 0.3);
    EXPECT_GT(service.report.l1iMpki, analysis.report.l1iMpki);
    EXPECT_LT(service.report.ipc, 1.1);
}

TEST(Workloads, WordCountProducesRealCounts)
{
    // The MPI word count runs the real algorithm: its output equals a
    // reference count done directly on the corpus.
    TextWorkload w(TextAlgorithm::WordCount, StackKind::Mpi, 0.2);
    RunEnv env;
    w.setup(env);
    // No public accessor for results, but the data accounting exposes
    // the reduction: output records exist and are far fewer bytes than
    // the input.
    MixCounter mix;
    Tracer t(env.layout, mix);
    FunctionId root =
        env.layout.addFunction("root", CodeLayer::Application, 256);
    t.call(root);
    w.execute(env, t);
    t.ret();
    EXPECT_GT(env.data.outputBytes, 0u);
    EXPECT_LT(env.data.outputBytes, env.data.inputBytes);
}

TEST(Workloads, GrepOutputMuchSmallerThanInput)
{
    WorkloadRun run = runByName("H-Grep", 0.3);
    EXPECT_EQ(run.data.outputVsInput(), DataVolume::MuchLess);
}

TEST(Workloads, SortPreservesDataVolume)
{
    WorkloadRun run = runByName("S-Sort", 0.3);
    EXPECT_EQ(run.data.outputVsInput(), DataVolume::Equal);
    EXPECT_EQ(run.data.intermediateVsInput(), DataVolume::Equal);
}

TEST(Workloads, HReadOutputMatchesInput)
{
    WorkloadRun run = runByName("H-Read", 0.3);
    EXPECT_EQ(run.data.outputVsInput(), DataVolume::Equal);
    EXPECT_EQ(run.data.intermediateBytes, 0u);
    EXPECT_EQ(run.sysBehavior, SystemBehavior::IoIntensive);
}

TEST(Workloads, BigDataIsDataMovementDominated)
{
    // Section 5.1's 92% claim, loosely: every big data workload's
    // data-movement-plus-branch share exceeds two thirds.
    for (const char *name :
         {"H-WordCount", "S-WordCount", "H-Read", "S-Sort"}) {
        WorkloadRun run = runByName(name, 0.2);
        EXPECT_GT(run.report.dataMovementWithBranchRatio, 0.66) << name;
    }
}

TEST(Workloads, FpNegligibleExceptMl)
{
    EXPECT_LT(runByName("H-WordCount").report.fpRatio, 0.02);
    EXPECT_LT(runByName("S-Sort").report.fpRatio, 0.02);
    EXPECT_GT(runByName("S-Kmeans").report.fpRatio, 0.10);
}

TEST(Baselines, SixSuitesRegistered)
{
    const auto &all = baselineWorkloads();
    ASSERT_EQ(all.size(), 6u);
    std::set<BaselineSuite> suites;
    for (const auto &e : all)
        suites.insert(e.suite);
    EXPECT_EQ(suites.size(), 6u);
}

TEST(Baselines, SuiteSignaturesHold)
{
    auto run = [](BaselineSuite s) {
        auto entries = baselineSuite(s);
        WorkloadPtr w = entries.front().make(0.3);
        return profileWorkload(*w, xeonE5645());
    };
    WorkloadRun specfp = run(BaselineSuite::SpecFp);
    WorkloadRun specint = run(BaselineSuite::SpecInt);
    WorkloadRun cloud = run(BaselineSuite::CloudSuite);
    WorkloadRun hpcc = run(BaselineSuite::Hpcc);

    // FP suites are FP-heavy; integer suites are not.
    EXPECT_GT(specfp.report.fpRatio, 0.2);
    EXPECT_LT(specint.report.fpRatio, 0.01);
    // CloudSuite's scale-out services have by far the worst L1I.
    EXPECT_GT(cloud.report.l1iMpki, 5.0 * specint.report.l1iMpki + 5.0);
    // HPCC has the best ILP of the set.
    EXPECT_GT(hpcc.report.ipc, specint.report.ipc);
}

TEST(Profiler, MetricVectorMatchesReport)
{
    WorkloadRun run = runByName("H-WordCount");
    EXPECT_DOUBLE_EQ(run.metrics[metricIndex("pipe.ipc")],
                     run.report.ipc);
    EXPECT_DOUBLE_EQ(run.metrics[metricIndex("cache.l1i_mpki")],
                     run.report.l1iMpki);
}

TEST(Profiler, DeterministicAcrossRuns)
{
    WorkloadRun a = runByName("H-WordCount");
    WorkloadRun b = runByName("H-WordCount");
    EXPECT_EQ(a.report.instructions, b.report.instructions);
    EXPECT_DOUBLE_EQ(a.report.ipc, b.report.ipc);
    EXPECT_DOUBLE_EQ(a.report.l1iMpki, b.report.l1iMpki);
}

TEST(Profiler, MachineConfigChangesResults)
{
    WorkloadPtr w1 = findWorkload("H-WordCount").make(testScale);
    WorkloadPtr w2 = findWorkload("H-WordCount").make(testScale);
    WorkloadRun xeon = profileWorkload(*w1, xeonE5645());
    WorkloadRun atom = profileWorkload(*w2, atomD510());
    EXPECT_EQ(xeon.report.instructions, atom.report.instructions);
    EXPECT_GT(xeon.report.ipc, atom.report.ipc);  // OoO beats in-order
    EXPECT_GE(atom.report.branchMispredictRatio,
              xeon.report.branchMispredictRatio);
}

} // namespace
} // namespace wcrt
