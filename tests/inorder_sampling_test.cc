/**
 * @file
 * Tests for the cycle-level in-order core and the segment-sampling
 * sink.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "sim/inorder_core.hh"
#include "trace/code_layout.hh"
#include "trace/sampling.hh"
#include "trace/tracer.hh"

namespace wcrt {
namespace {

class InOrderTest : public ::testing::Test
{
  protected:
    InOrderTest() : core(atomD510())
    {
        fn = layout.addFunction("k", CodeLayer::Application, 2048);
    }

    CodeLayout layout;
    FunctionId fn;
    InOrderCore core;
};

TEST_F(InOrderTest, IpcBoundedByIssueWidth)
{
    Tracer t(layout, core);
    t.call(fn);
    t.loop(20000, [&](uint64_t) { t.intAlu(IntPurpose::Compute, 4); });
    t.ret();
    InOrderReport r = core.report();
    EXPECT_GT(r.ipc, 0.5);
    EXPECT_LE(r.ipc, 2.0 + 1e-9);  // 2-wide in-order
}

TEST_F(InOrderTest, LoadUseStallsAppearForDependentChains)
{
    Tracer t(layout, core);
    t.call(fn);
    // Pointer-chase shape: load immediately consumed, spread over a
    // range larger than the L1D so loads go to L2 and beyond.
    t.loop(20000, [&](uint64_t i) {
        t.load(0x1000000 + (i * 8191 % 262144) * 64, 8);
        t.intAlu(IntPurpose::Compute, 1);  // dependent op
    });
    t.ret();
    InOrderReport r = core.report();
    EXPECT_GT(r.loadUseStallCycles, 0.0);
    EXPECT_LT(r.ipc, 1.0);
}

TEST_F(InOrderTest, DividesAreExpensive)
{
    auto run = [&](bool divs) {
        InOrderCore c(atomD510());
        CodeLayout l;
        auto f = l.addFunction("k", CodeLayer::Application, 1024);
        Tracer t(l, c);
        t.call(f);
        t.loop(5000, [&](uint64_t) {
            if (divs)
                t.fpDiv(1);
            else
                t.fpAlu(1);
        });
        t.ret();
        return c.report().ipc;
    };
    EXPECT_LT(run(true), run(false) / 3.0);
}

TEST_F(InOrderTest, MispredictsFlushThePipeline)
{
    auto run = [&](double taken_prob) {
        InOrderCore c(atomD510());
        CodeLayout l;
        auto f = l.addFunction("k", CodeLayer::Application, 1024);
        Rng rng(5);
        Tracer t(l, c);
        t.call(f);
        t.loop(20000, [&](uint64_t) {
            t.intAlu(IntPurpose::Compute, 2);
            t.branchForward(rng.nextBool(taken_prob), 16);
        });
        t.ret();
        return c.report().ipc;
    };
    // Random branches must cost clearly more than biased ones.
    EXPECT_LT(run(0.5), run(0.02) * 0.8);
}

TEST(Sampling, ForwardsConfiguredFraction)
{
    CountingSink downstream;
    SamplingSink sampler(downstream, 100000);
    MicroOp op;
    for (int i = 0; i < 100000; ++i)
        sampler.consume(op);
    EXPECT_EQ(sampler.totalOps(), 100000u);
    EXPECT_NEAR(sampler.sampledFraction(), 0.05, 0.002);
    EXPECT_EQ(downstream.ops(), sampler.sampledOps());
}

TEST(Sampling, WindowsLandAtConfiguredPositions)
{
    class PositionSink : public TraceSink
    {
      public:
        void
        consume(const MicroOp &op) override
        {
            positions.push_back(op.memAddr);
        }
        std::vector<uint64_t> positions;
    };
    PositionSink downstream;
    SamplingSink sampler(downstream, 1000,
                         {{0.1, 0.2}, {0.8, 0.9}});
    for (uint64_t i = 0; i < 1000; ++i) {
        MicroOp op;
        op.memAddr = i;
        sampler.consume(op);
    }
    ASSERT_EQ(downstream.positions.size(), 200u);
    EXPECT_EQ(downstream.positions.front(), 100u);
    EXPECT_EQ(downstream.positions.back(), 899u);
}

TEST(Sampling, HandlesTraceLongerThanExpected)
{
    CountingSink downstream;
    SamplingSink sampler(downstream, 1000, {{0.5, 0.6}});
    MicroOp op;
    for (int i = 0; i < 5000; ++i)  // 5x the expected length
        sampler.consume(op);
    EXPECT_EQ(downstream.ops(), 100u);  // window didn't grow
}

TEST(Sampling, PaperWindowsAreFivePercentTotal)
{
    auto windows = paperSampleWindows();
    ASSERT_EQ(windows.size(), 5u);
    double total = 0.0;
    for (const auto &w : windows)
        total += w.end - w.begin;
    EXPECT_NEAR(total, 0.05, 1e-9);
}

TEST(Sampling, RejectsOverlappingWindows)
{
    CountingSink downstream;
    EXPECT_DEATH(
        {
            SamplingSink s(downstream, 100, {{0.1, 0.5}, {0.4, 0.6}});
        },
        "sorted");
}

} // namespace
} // namespace wcrt
