/**
 * @file
 * Parameterized property tests: invariants that must hold across whole
 * parameter families — cache geometries, branch-unit configurations,
 * Zipf shapes, tracer loop sizes and workload dataset scales.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "base/rng.hh"
#include "core/profiler.hh"
#include "sim/branch.hh"
#include "sim/cache.hh"
#include "trace/code_layout.hh"
#include "trace/mix_counter.hh"
#include "trace/tracer.hh"
#include "workloads/registry.hh"

namespace wcrt {
namespace {

// ---------------------------------------------------------------------
// Cache geometry family: (size KB, associativity).
// ---------------------------------------------------------------------

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(CacheGeometry, StatsStayConsistentOnRandomTrace)
{
    auto [kb, assoc] = GetParam();
    Cache c({"p", static_cast<uint64_t>(kb) * 1024, assoc, 64});
    Rng rng(kb * 131 + assoc);
    uint64_t hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += c.access(rng.nextBelow(1 << 22) & ~63ull);
    EXPECT_EQ(c.accesses(), static_cast<uint64_t>(n));
    EXPECT_EQ(c.misses() + hits, static_cast<uint64_t>(n));
    EXPECT_GE(c.missRatio(), 0.0);
    EXPECT_LE(c.missRatio(), 1.0);
}

TEST_P(CacheGeometry, WorkingSetSmallerThanCapacityAlwaysHits)
{
    auto [kb, assoc] = GetParam();
    Cache c({"p", static_cast<uint64_t>(kb) * 1024, assoc, 64});
    // Touch half the capacity repeatedly: after the cold pass, no
    // misses regardless of geometry (LRU keeps the working set).
    uint64_t lines = kb * 1024 / 64 / 2;
    for (int pass = 0; pass < 3; ++pass)
        for (uint64_t l = 0; l < lines; ++l)
            c.access(l * 64);
    EXPECT_EQ(c.misses(), lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(16u, 32u, 256u, 1024u),
                       ::testing::Values(1u, 2u, 8u, 16u)));

// ---------------------------------------------------------------------
// Branch unit family: every predictor configuration obeys the same
// accounting invariants on a mixed branch stream.
// ---------------------------------------------------------------------

class BranchConfigFamily : public ::testing::TestWithParam<int>
{
  protected:
    BranchConfig
    config() const
    {
        switch (GetParam()) {
          case 0:
            return atomD510Branch();
          case 1:
            return xeonE5645Branch();
          case 2: {
            BranchConfig c = xeonE5645Branch();
            c.hasLoopPredictor = false;
            return c;
          }
          default: {
            BranchConfig c = xeonE5645Branch();
            c.hasIndirectPredictor = false;
            c.rasEntries = 4;
            return c;
          }
        }
    }
};

TEST_P(BranchConfigFamily, AccountingInvariants)
{
    BranchUnit bu(config());
    Rng rng(7 + GetParam());
    for (int i = 0; i < 20000; ++i) {
        MicroOp op;
        uint64_t pick = rng.nextBelow(100);
        op.pc = 0x4000 + rng.nextBelow(64) * 16;
        if (pick < 70) {
            op.kind = OpKind::BranchCond;
            op.taken = rng.nextBool(0.4);
            op.target = op.taken ? 0x8000 : 0;
        } else if (pick < 80) {
            op.kind = OpKind::BranchIndirect;
            op.taken = true;
            op.target = 0x9000 + rng.nextBelow(4) * 256;
        } else if (pick < 90) {
            op.kind = OpKind::Call;
            op.target = 0xa000;
        } else {
            op.kind = OpKind::Return;
            op.target = 0x4000;
        }
        bu.predict(op);
    }
    const BranchStats &st = bu.stats();
    EXPECT_LE(st.conditionalMispredicts, st.conditional);
    EXPECT_LE(st.indirectMispredicts, st.indirect);
    EXPECT_LE(st.returnMispredicts, st.returns);
    EXPECT_GE(st.mispredictRatio(), 0.0);
    EXPECT_LE(st.mispredictRatio(), 1.0);
    EXPECT_EQ(st.conditional + st.indirect + st.returns, st.total());
}

TEST_P(BranchConfigFamily, BiasedBranchesArePredictable)
{
    BranchUnit bu(config());
    // A 97%-taken branch must be predicted well by every config.
    Rng rng(11);
    for (int i = 0; i < 10000; ++i)
        bu.predict([&] {
            MicroOp op;
            op.kind = OpKind::BranchCond;
            op.pc = 0x4000;
            op.taken = rng.nextBool(0.97);
            op.target = 0x8000;
            return op;
        }());
    EXPECT_LT(bu.stats().mispredictRatio(), 0.08);
}

INSTANTIATE_TEST_SUITE_P(Configs, BranchConfigFamily,
                         ::testing::Range(0, 4));

// ---------------------------------------------------------------------
// Zipf family: distribution invariants across (n, s).
// ---------------------------------------------------------------------

class ZipfFamily
    : public ::testing::TestWithParam<std::tuple<size_t, double>>
{
};

TEST_P(ZipfFamily, PmfIsNormalizedAndMonotone)
{
    auto [n, s] = GetParam();
    ZipfSampler zipf(n, s);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        sum += zipf.pmf(i);
        if (i > 0) {
            EXPECT_LE(zipf.pmf(i), zipf.pmf(i - 1) + 1e-12);
        }
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(ZipfFamily, SamplesStayInRange)
{
    auto [n, s] = GetParam();
    ZipfSampler zipf(n, s);
    Rng rng(static_cast<uint64_t>(n * 1000 + s * 10));
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(zipf.sample(rng), n);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZipfFamily,
    ::testing::Combine(::testing::Values<size_t>(1, 10, 1000),
                       ::testing::Values(0.0, 0.8, 1.2)));

// ---------------------------------------------------------------------
// Tracer loop family: emission counts are exact for any trip count.
// ---------------------------------------------------------------------

class LoopFamily : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(LoopFamily, LoopEmitsExactOpCount)
{
    uint64_t n = GetParam();
    CodeLayout layout;
    auto fn = layout.addFunction("f", CodeLayer::Application, 4096);
    MixCounter mix;
    Tracer t(layout, mix);
    t.call(fn);
    t.loop(n, [&](uint64_t) { t.intAlu(IntPurpose::Compute, 3); });
    t.ret();
    // Per iteration: 3 ALU + 1 branch; n == 0 emits one guard branch;
    // plus the final Return.
    uint64_t expected =
        (n == 0 ? 1 : n * 4) + 1;
    EXPECT_EQ(mix.total(), expected);
}

INSTANTIATE_TEST_SUITE_P(TripCounts, LoopFamily,
                         ::testing::Values(0u, 1u, 2u, 7u, 64u, 1000u));

// ---------------------------------------------------------------------
// Workload scale family: rate metrics are scale-stable (the property
// that justifies profiling MB-scale stand-ins for 128 GB inputs).
// ---------------------------------------------------------------------

class ScaleFamily : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ScaleFamily, MixRatiosStableAcrossScale)
{
    const char *name = GetParam();
    auto run = [&](double scale) {
        WorkloadPtr w = findWorkload(name).make(scale);
        return profileWorkload(*w, xeonE5645());
    };
    WorkloadRun small = run(0.15);
    WorkloadRun large = run(0.45);
    EXPECT_GT(large.report.instructions, small.report.instructions);
    EXPECT_NEAR(small.report.branchRatio, large.report.branchRatio,
                0.05);
    EXPECT_NEAR(small.report.integerRatio, large.report.integerRatio,
                0.06);
    EXPECT_NEAR(small.report.loadRatio, large.report.loadRatio, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Workloads, ScaleFamily,
                         ::testing::Values("H-WordCount", "S-Sort",
                                           "M-Grep", "H-Read",
                                           "I-OrderBy"));

} // namespace
} // namespace wcrt
