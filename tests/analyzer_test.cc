/**
 * @file
 * Tests for the WCRT analyzer: the normalize-PCA-cluster pipeline on
 * controlled metric vectors, representative selection and the
 * end-to-end reduction of a small real roster.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "base/rng.hh"
#include "core/analyzer.hh"
#include "core/profiler.hh"
#include "workloads/registry.hh"

namespace wcrt {
namespace {

/** Build a metric vector around one of k prototype signatures. */
MetricVector
fromPrototype(int proto, Rng &rng)
{
    MetricVector v{};
    for (size_t i = 0; i < numMetrics; ++i) {
        double base = std::sin(0.7 * static_cast<double>(i + 1) *
                               (proto + 1));
        v[i] = 5.0 * base + 0.05 * rng.nextGaussian();
    }
    return v;
}

TEST(Analyzer, SeparatesSyntheticClasses)
{
    Rng rng(31);
    std::vector<std::string> names;
    std::vector<MetricVector> metrics;
    for (int proto = 0; proto < 4; ++proto) {
        for (int i = 0; i < 6; ++i) {
            // std::string(1, ...) sidesteps a GCC 12 -O3 -Wrestrict
            // false positive on concatenating short literals.
            names.push_back(std::string(1, 'w') + std::to_string(proto) +
                            std::string(1, '_') + std::to_string(i));
            metrics.push_back(fromPrototype(proto, rng));
        }
    }
    AnalyzerOptions opts;
    opts.clusters = 4;
    SubsetReport report = reduceWorkloads(names, metrics, opts);

    ASSERT_EQ(report.clusters.size(), 4u);
    // Every cluster must contain exactly one prototype family.
    for (const auto &c : report.clusters) {
        ASSERT_FALSE(c.members.empty());
        char family = c.members.front()[1];
        for (const auto &m : c.members)
            EXPECT_EQ(m[1], family) << "mixed cluster";
        EXPECT_EQ(c.members.size(), 6u);
        // The representative comes from the cluster.
        EXPECT_EQ(c.representative[1], family);
    }
    EXPECT_GT(report.silhouetteScore, 0.8);
}

TEST(Analyzer, PcaDropsRedundantDimensions)
{
    // All 45 metrics derived from 2 latent factors: PCA should retain
    // very few components.
    Rng rng(37);
    std::vector<std::string> names;
    std::vector<MetricVector> metrics;
    for (int i = 0; i < 40; ++i) {
        double f1 = rng.nextGaussian();
        double f2 = rng.nextGaussian();
        MetricVector v{};
        for (size_t m = 0; m < numMetrics; ++m)
            v[m] = (m % 2 ? f1 : f2) * (1.0 + 0.01 * m);
        names.push_back(std::string(1, 'w') + std::to_string(i));
        metrics.push_back(v);
    }
    AnalyzerOptions opts;
    opts.clusters = 4;
    SubsetReport report = reduceWorkloads(names, metrics, opts);
    EXPECT_LE(report.retainedComponents, 3u);
    EXPECT_GE(report.explainedVariance, 0.9);
}

TEST(Analyzer, AutoKFindsPlantedClusterCount)
{
    Rng rng(41);
    std::vector<std::string> names;
    std::vector<MetricVector> metrics;
    for (int proto = 0; proto < 5; ++proto) {
        for (int i = 0; i < 8; ++i) {
            names.push_back(std::string(1, 'p') + std::to_string(proto) +
                            std::string(1, '_') + std::to_string(i));
            metrics.push_back(fromPrototype(proto, rng));
        }
    }
    AnalyzerOptions opts;
    opts.clusters = 0;  // choose by silhouette
    opts.minClusters = 2;
    opts.maxClusters = 10;
    SubsetReport report = reduceWorkloads(names, metrics, opts);
    EXPECT_EQ(report.clusters.size(), 5u);
}

TEST(Analyzer, EveryWorkloadAssignedExactlyOnce)
{
    Rng rng(43);
    std::vector<std::string> names;
    std::vector<MetricVector> metrics;
    for (int i = 0; i < 30; ++i) {
        names.push_back(std::string(1, 'w') + std::to_string(i));
        metrics.push_back(fromPrototype(i % 3, rng));
    }
    AnalyzerOptions opts;
    opts.clusters = 3;
    SubsetReport report = reduceWorkloads(names, metrics, opts);
    std::set<std::string> seen;
    size_t total = 0;
    for (const auto &c : report.clusters) {
        total += c.members.size();
        for (const auto &m : c.members)
            EXPECT_TRUE(seen.insert(m).second) << m << " twice";
    }
    EXPECT_EQ(total, names.size());
    EXPECT_EQ(report.inputWorkloads, names.size());
}

TEST(Analyzer, EndToEndOnSmallRealRoster)
{
    // A miniature version of the Section-3 study: profile ten real
    // workloads at tiny scale and verify that stacks separate.
    std::vector<std::string> names;
    std::vector<MetricVector> metrics;
    for (const char *name :
         {"M-WordCount@wiki", "M-Sort@wiki", "M-Grep@wiki",
          "H-WordCount@wiki", "H-Sort@wiki", "H-Grep@wiki",
          "S-WordCount@wiki", "S-Sort@wiki", "S-Grep@wiki", "H-Read"}) {
        WorkloadPtr w = findWorkload(name).make(0.15);
        WorkloadRun run = profileWorkload(*w, xeonE5645());
        names.push_back(name);
        metrics.push_back(run.metrics);
    }
    AnalyzerOptions opts;
    opts.clusters = 4;
    SubsetReport report = reduceWorkloads(names, metrics, opts);

    ASSERT_EQ(report.clusters.size(), 4u);
    // H-Read (service, extreme front-end) must not share a cluster
    // with the MPI workloads (thin stack).
    std::string hread_cluster, mpi_cluster;
    for (const auto &c : report.clusters) {
        for (const auto &m : c.members) {
            if (m == "H-Read")
                hread_cluster = std::to_string(c.id);
            if (m == "M-WordCount@wiki")
                mpi_cluster = std::to_string(c.id);
        }
    }
    EXPECT_NE(hread_cluster, mpi_cluster);
}

TEST(Analyzer, RepresentativesReturnedInClusterOrder)
{
    Rng rng(47);
    std::vector<std::string> names;
    std::vector<MetricVector> metrics;
    for (int i = 0; i < 12; ++i) {
        names.push_back(std::string(1, 'w') + std::to_string(i));
        metrics.push_back(fromPrototype(i % 4, rng));
    }
    AnalyzerOptions opts;
    opts.clusters = 4;
    SubsetReport report = reduceWorkloads(names, metrics, opts);
    auto reps = report.representatives();
    ASSERT_EQ(reps.size(), 4u);
    for (size_t i = 0; i < reps.size(); ++i)
        EXPECT_EQ(reps[i], report.clusters[i].representative);
}

} // namespace
} // namespace wcrt
