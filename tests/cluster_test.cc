/**
 * @file
 * Tests for the shared-nothing cluster model.
 */

#include <gtest/gtest.h>

#include "core/cluster.hh"
#include "workloads/text_workloads.hh"

namespace wcrt {
namespace {

std::function<WorkloadPtr(double, uint64_t)>
wordcountFactory()
{
    return [](double shard, uint64_t seed) -> WorkloadPtr {
        return std::make_unique<TextWorkload>(TextAlgorithm::WordCount,
                                              StackKind::Hadoop, shard,
                                              seed);
    };
}

TEST(Cluster, SingleNodeSpeedupIsUnity)
{
    ClusterConfig cfg;
    cfg.nodes = 1;
    ClusterRun run =
        profileOnCluster(wordcountFactory(), xeonE5645(), 0.3, cfg);
    EXPECT_NEAR(run.speedup, 1.0, 1e-9);
    EXPECT_EQ(run.networkSeconds, 0.0);
    EXPECT_EQ(run.perNode.size(), 1u);
}

TEST(Cluster, ScaleOutSpeedsUpSublinearly)
{
    ClusterConfig cfg;
    cfg.nodes = 4;
    ClusterRun run =
        profileOnCluster(wordcountFactory(), xeonE5645(), 0.4, cfg);
    EXPECT_EQ(run.perNode.size(), 4u);
    EXPECT_GT(run.speedup, 1.5);
    EXPECT_LT(run.speedup, 4.5);
    EXPECT_GT(run.networkSeconds, 0.0);
}

TEST(Cluster, PerNodeMicroArchIsShardInvariant)
{
    ClusterConfig one;
    one.nodes = 1;
    ClusterConfig four;
    four.nodes = 4;
    ClusterRun a =
        profileOnCluster(wordcountFactory(), xeonE5645(), 0.4, one);
    ClusterRun b =
        profileOnCluster(wordcountFactory(), xeonE5645(), 0.4, four);
    // The paper measures per-node counters; sharding must not change
    // the class of the numbers.
    EXPECT_NEAR(a.averageIpc(), b.averageIpc(), 0.3);
    EXPECT_NEAR(a.averageL1iMpki(), b.averageL1iMpki(),
                0.5 * a.averageL1iMpki() + 2.0);
}

TEST(Cluster, NodesDifferButAgree)
{
    ClusterConfig cfg;
    cfg.nodes = 3;
    ClusterRun run =
        profileOnCluster(wordcountFactory(), xeonE5645(), 0.45, cfg);
    // Different seeds => different shards => slightly different
    // instruction counts, but the same behaviour class.
    EXPECT_NE(run.perNode[0].report.instructions,
              run.perNode[1].report.instructions);
    for (const auto &r : run.perNode) {
        EXPECT_GT(r.report.ipc, 0.5);
        EXPECT_LT(r.report.ipc, 2.0);
    }
}

} // namespace
} // namespace wcrt
