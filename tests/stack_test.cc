/**
 * @file
 * Tests for the software-stack engines: MapReduce (sorting, grouping,
 * combiner, I/O accounting), RDD (lazy semantics, transformations,
 * shuffle, caching), native/MPI (partitioning and exchange), the KV
 * store read path and the vectorized SQL executor.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/strings.hh"
#include "datagen/table.hh"
#include "stack/kvstore/store.hh"
#include "stack/mapreduce/engine.hh"
#include "stack/native/engine.hh"
#include "stack/rdd/engine.hh"
#include "stack/sql/vectorized.hh"

namespace wcrt {
namespace {

/** Sink that discards ops (functional tests). */
class NullSink : public TraceSink
{
  public:
    void consume(const MicroOp &) override { ++ops; }
    uint64_t ops = 0;
};

RecordVec
makeInput(RunEnv &env, size_t n)
{
    HeapRegion region = env.heap.alloc("test.input", n * 64);
    RecordVec input;
    for (size_t i = 0; i < n; ++i) {
        Record r;
        r.key = "k" + std::to_string(i % 7);
        r.value = "v" + std::to_string(i);
        r.keyAddr = region.element(i, 64);
        r.valueAddr = r.keyAddr + 16;
        input.push_back(std::move(r));
    }
    return input;
}

/** Map: pass through; Reduce: count the group. */
class CountReducer : public Reducer
{
  public:
    void registerCode(CodeLayout &) override {}
    void
    reduce(Tracer &t, const std::string &key, const RecordVec &values,
           RecordVec &out) override
    {
        t.intAlu(IntPurpose::Compute, 1);
        Record r = values.front();
        r.key = key;
        r.value = std::to_string(values.size());
        out.push_back(std::move(r));
    }
};

class PassMapper : public Mapper
{
  public:
    void registerCode(CodeLayout &) override {}
    void
    map(Tracer &t, const Record &in, RecordVec &out) override
    {
        t.intAlu(IntPurpose::IntAddress, 1);
        out.push_back(in);
    }
};

TEST(MapReduceEngine, GroupsAndCountsAllKeys)
{
    RunEnv env;
    MapReduceEngine engine(env.layout);
    RecordVec input = makeInput(env, 70);
    NullSink sink;
    Tracer t(env.layout, sink);
    PassMapper m;
    CountReducer r;
    RecordVec out = engine.run(env, t, input, m, r);

    // 7 distinct keys, each seen 10 times.
    ASSERT_EQ(out.size(), 7u);
    std::map<std::string, std::string> result;
    for (const auto &rec : out)
        result[rec.key] = rec.value;
    for (int k = 0; k < 7; ++k)
        EXPECT_EQ(result["k" + std::to_string(k)], "10");
}

TEST(MapReduceEngine, AccountsIoAndDataBehaviour)
{
    RunEnv env;
    MapReduceEngine engine(env.layout);
    RecordVec input = makeInput(env, 50);
    NullSink sink;
    Tracer t(env.layout, sink);
    PassMapper m;
    CountReducer r;
    engine.run(env, t, input, m, r);

    EXPECT_EQ(env.data.inputBytes, totalBytes(input));
    EXPECT_GT(env.data.intermediateBytes, 0u);
    EXPECT_GT(env.data.outputBytes, 0u);
    EXPECT_GE(env.io.diskReadBytes, totalBytes(input));
    EXPECT_GT(env.io.diskWriteBytes, 0u);
    EXPECT_GT(env.io.networkBytes, 0u);  // shuffle crosses the network
}

TEST(MapReduceEngine, CombinerShrinksIntermediateData)
{
    auto run = [](bool combine) {
        RunEnv env;
        MapReduceConfig cfg;
        cfg.useCombiner = combine;
        MapReduceEngine engine(env.layout, cfg);
        RecordVec input = makeInput(env, 200);
        NullSink sink;
        Tracer t(env.layout, sink);
        PassMapper m;
        CountReducer r;
        engine.run(env, t, input, m, r);
        return env.data.intermediateBytes;
    };
    EXPECT_LT(run(true), run(false) / 4);
}

TEST(MapReduceEngine, EmitsFrameworkTrace)
{
    RunEnv env;
    MapReduceEngine engine(env.layout);
    RecordVec input = makeInput(env, 30);
    NullSink sink;
    Tracer t(env.layout, sink);
    PassMapper m;
    CountReducer r;
    engine.run(env, t, input, m, r);
    // Per-record framework overhead: far more ops than records.
    EXPECT_GT(sink.ops, 30u * 100);
}

TEST(RddEngine, MapFilterPipeline)
{
    RunEnv env;
    RddEngine engine(env.layout);
    RecordVec input = makeInput(env, 40);
    NullSink sink;
    Tracer t(env.layout, sink);

    Rdd result =
        engine.parallelize(input)
            .filter([](Tracer &, const Record &r) {
                return r.key == "k1" || r.key == "k2";
            })
            .map([](Tracer &, const Record &r, RecordVec &out) {
                Record copy = r;
                copy.value = "mapped-" + r.value;
                out.push_back(std::move(copy));
            });
    RecordVec out = result.collect(env, t);

    // 40 records over 7 keys: k1 and k2 appear 6 times each.
    ASSERT_EQ(out.size(), 12u);
    for (const auto &r : out) {
        EXPECT_TRUE(r.key == "k1" || r.key == "k2");
        EXPECT_EQ(r.value.substr(0, 7), "mapped-");
    }
}

TEST(RddEngine, ReduceByKeyCombinesValues)
{
    RunEnv env;
    RddEngine engine(env.layout);
    RecordVec input = makeInput(env, 70);
    for (auto &r : input)
        r.value = "1";
    NullSink sink;
    Tracer t(env.layout, sink);

    RecordVec out =
        engine.parallelize(input)
            .reduceByKey([](Tracer &, const Record &a, const Record &b) {
                Record r = a;
                r.value = std::to_string(std::stoll(a.value) +
                                         std::stoll(b.value));
                return r;
            })
            .collect(env, t);
    ASSERT_EQ(out.size(), 7u);
    for (const auto &r : out)
        EXPECT_EQ(r.value, "10");
}

TEST(RddEngine, SortByKeyOrdersWithinPartitions)
{
    RunEnv env;
    RddConfig cfg;
    cfg.numPartitions = 1;  // single partition => total order
    RddEngine engine(env.layout, cfg);
    RecordVec input = makeInput(env, 50);
    NullSink sink;
    Tracer t(env.layout, sink);

    RecordVec out = engine.parallelize(input).sortByKey().collect(env, t);
    ASSERT_EQ(out.size(), 50u);
    for (size_t i = 1; i < out.size(); ++i)
        EXPECT_LE(out[i - 1].key, out[i].key);
}

TEST(RddEngine, CacheAvoidsRecomputation)
{
    RunEnv env;
    RddEngine engine(env.layout);
    RecordVec input = makeInput(env, 30);
    NullSink sink;
    Tracer t(env.layout, sink);

    int evaluations = 0;
    Rdd cached = engine.parallelize(input)
                     .map([&](Tracer &, const Record &r, RecordVec &out) {
                         ++evaluations;
                         out.push_back(r);
                     })
                     .cache();
    cached.collect(env, t);
    int after_first = evaluations;
    cached.collect(env, t);
    EXPECT_EQ(evaluations, after_first);  // second pass hits the cache
    EXPECT_EQ(after_first, 30);
}

TEST(RddEngine, LazinessUntilAction)
{
    RunEnv env;
    RddEngine engine(env.layout);
    RecordVec input = makeInput(env, 10);
    NullSink sink;
    Tracer t(env.layout, sink);

    int evaluations = 0;
    Rdd rdd = engine.parallelize(input).map(
        [&](Tracer &, const Record &r, RecordVec &out) {
            ++evaluations;
            out.push_back(r);
        });
    EXPECT_EQ(evaluations, 0);  // nothing ran yet
    rdd.count(env, t);
    EXPECT_EQ(evaluations, 10);
}

/** Native kernel that routes by key hash and echoes on finalize. */
class EchoKernel : public NativeKernel
{
  public:
    void registerCode(CodeLayout &) override {}
    void
    processPartition(Tracer &, const RecordVec &in,
                     std::vector<RecordVec> &to_ranks) override
    {
        for (const auto &r : in)
            to_ranks[fnv1a(r.key) % to_ranks.size()].push_back(r);
    }
    void
    finalize(Tracer &, const RecordVec &received, RecordVec &out)
        override
    {
        out = received;
    }
};

TEST(NativeEngine, PreservesRecordsThroughExchange)
{
    RunEnv env;
    NativeEngine engine(env.layout);
    RecordVec input = makeInput(env, 60);
    NullSink sink;
    Tracer t(env.layout, sink);
    EchoKernel kernel;
    RecordVec out = engine.run(env, t, input, kernel);

    ASSERT_EQ(out.size(), input.size());
    std::multiset<std::string> in_vals, out_vals;
    for (const auto &r : input)
        in_vals.insert(r.value);
    for (const auto &r : out)
        out_vals.insert(r.value);
    EXPECT_EQ(in_vals, out_vals);
}

TEST(NativeEngine, RoutesKeysToConsistentRanks)
{
    RunEnv env;
    NativeEngine engine(env.layout);
    RecordVec input = makeInput(env, 60);
    NullSink sink;
    Tracer t(env.layout, sink);
    EchoKernel kernel;
    engine.run(env, t, input, kernel);
    // Thin stack: some network traffic, but intermediate == payload.
    EXPECT_GT(env.io.networkBytes, 0u);
    EXPECT_EQ(env.data.intermediateBytes, totalBytes(input));
}

TEST(NativeEngine, ThinnerTraceThanMapReduce)
{
    RunEnv env1, env2;
    NativeEngine native(env1.layout);
    MapReduceEngine hadoop(env2.layout);
    RecordVec in1 = makeInput(env1, 100);
    RecordVec in2 = makeInput(env2, 100);

    NullSink s1, s2;
    Tracer t1(env1.layout, s1), t2(env2.layout, s2);
    EchoKernel kernel;
    native.run(env1, t1, in1, kernel);
    PassMapper m;
    CountReducer r;
    hadoop.run(env2, t2, in2, m, r);
    // The deep stack executes several times more instructions for the
    // same logical work (the Section 5.5 premise).
    EXPECT_GT(s2.ops, 3 * s1.ops);
}

TEST(KvStore, GetReturnsStoredValueSizes)
{
    RunEnv env;
    KvDataset data =
        TableGenerator(5).profSearchResumes(env.heap, 64);
    KvStore store(env.layout, data);
    NullSink sink;
    Tracer t(env.layout, sink);
    t.call(env.layout.addFunction("root", CodeLayer::Application, 256));
    EXPECT_EQ(store.get(t, env, 5), data.values[5].size());
    EXPECT_EQ(store.get(t, env, 63), data.values[63].size());
    EXPECT_EQ(store.get(t, env, 64), 0u);  // out of range
    t.ret();
}

TEST(KvStore, ServeAccountsIoPerRequest)
{
    RunEnv env;
    KvDataset data =
        TableGenerator(5).profSearchResumes(env.heap, 128);
    KvStore store(env.layout, data);
    NullSink sink;
    Tracer t(env.layout, sink);
    t.call(env.layout.addFunction("root", CodeLayer::Application, 256));
    Rng rng(9);
    store.serve(t, env, 100, rng);
    t.ret();
    EXPECT_GT(env.io.diskReadBytes, 100u * 1000);   // block reads
    EXPECT_GT(env.io.networkBytes, 100u * 1000);    // responses
    EXPECT_GT(env.data.outputBytes, 100u * 1000);
}

class VectorizedTest : public ::testing::Test
{
  protected:
    VectorizedTest()
        : engine(env.layout),
          orders(TableGenerator(5).ecommerceOrders(env.heap, 200)),
          items(TableGenerator(5).ecommerceItems(env.heap, 600, 200)),
          tracer(env.layout, sink)
    {
        root = env.layout.addFunction("root", CodeLayer::Application,
                                      256);
    }

    void SetUp() override { tracer.call(root); }
    void TearDown() override { tracer.ret(); }

    RunEnv env;
    VectorizedEngine engine;
    DataTable orders;
    DataTable items;
    NullSink sink;
    Tracer tracer;
    FunctionId root;
};

TEST_F(VectorizedTest, FilterMatchesReference)
{
    Selection all = engine.scan(env, tracer, items);
    ASSERT_EQ(all.size(), items.rows);
    Selection cheap = engine.filterFloat64(
        env, tracer, items, "goods_price", all,
        [](double p) { return p < 20.0; });
    const auto &prices = items.column("goods_price").doubles;
    uint64_t expected = 0;
    for (double p : prices)
        expected += p < 20.0;
    EXPECT_EQ(cheap.size(), expected);
    for (auto row : cheap)
        EXPECT_LT(prices[row], 20.0);
}

TEST_F(VectorizedTest, OrderByProducesSortedSelection)
{
    Selection all = engine.scan(env, tracer, orders);
    Selection sorted =
        engine.orderByInt64(env, tracer, orders, "create_date", all);
    const auto &dates = orders.column("create_date").ints;
    ASSERT_EQ(sorted.size(), orders.rows);
    for (size_t i = 1; i < sorted.size(); ++i)
        EXPECT_LE(dates[sorted[i - 1]], dates[sorted[i]]);
}

TEST_F(VectorizedTest, HashJoinMatchesNestedLoopReference)
{
    Selection all_orders = engine.scan(env, tracer, orders);
    Selection all_items = engine.scan(env, tracer, items);
    auto joined = engine.hashJoinInt64(env, tracer, orders, "order_id",
                                       all_orders, items, "order_id",
                                       all_items);
    // Reference count: sum over items of matching orders (order_id is
    // unique in orders).
    const auto &item_fk = items.column("order_id").ints;
    uint64_t expected = 0;
    for (int64_t fk : item_fk)
        expected += fk >= 1 && fk <= static_cast<int64_t>(orders.rows);
    EXPECT_EQ(joined.size(), expected);
    const auto &order_pk = orders.column("order_id").ints;
    for (auto [lrow, rrow] : joined)
        EXPECT_EQ(order_pk[lrow], item_fk[rrow]);
}

TEST_F(VectorizedTest, AggregateSumMatchesReference)
{
    Selection all = engine.scan(env, tracer, items);
    auto agg = engine.aggregateSum(env, tracer, items, "category",
                                   "goods_price", all);
    const auto &cats = items.column("category").ints;
    const auto &prices = items.column("goods_price").doubles;
    std::map<int64_t, double> expected;
    for (uint64_t r = 0; r < items.rows; ++r)
        expected[cats[r]] += prices[r];
    ASSERT_EQ(agg.size(), expected.size());
    for (auto [group, sum] : agg)
        EXPECT_NEAR(sum, expected[group], 1e-6);
}

TEST_F(VectorizedTest, DifferenceExcludesMatchingKeys)
{
    Selection all_orders = engine.scan(env, tracer, orders);
    Selection all_items = engine.scan(env, tracer, items);
    Selection only = engine.differenceInt64(env, tracer, orders,
                                            "order_id", all_orders,
                                            items, "order_id",
                                            all_items);
    std::set<int64_t> item_keys(items.column("order_id").ints.begin(),
                                items.column("order_id").ints.end());
    const auto &order_pk = orders.column("order_id").ints;
    uint64_t expected = 0;
    for (int64_t pk : order_pk)
        expected += item_keys.count(pk) == 0;
    EXPECT_EQ(only.size(), expected);
    for (auto row : only)
        EXPECT_EQ(item_keys.count(order_pk[row]), 0u);
}

} // namespace
} // namespace wcrt
