/**
 * @file
 * Traffic-engine tests: histogram quantiles against a sorted-sample
 * oracle, arrival-process determinism, phase-barrier ordering, and
 * the closed/open-loop op-count invariants at jobs=1 vs jobs=N.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "base/rng.hh"
#include "loadgen/arrival.hh"
#include "loadgen/histogram.hh"
#include "loadgen/orchestrator.hh"
#include "loadgen/targets.hh"

namespace wcrt {
namespace {

// --------------------------------------------------------- histogram

TEST(LoadgenHistogram, ExactBelowSubBucketRange)
{
    LatencyHistogram h(5);
    for (uint64_t v = 0; v < 32; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 32u);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 31u);
    // Every value below 2^subBits has its own bucket: quantiles are
    // exact order statistics here.
    EXPECT_EQ(h.quantile(0.5), 15u);
    EXPECT_EQ(h.quantile(1.0), 31u);
}

TEST(LoadgenHistogram, QuantilesTrackSortedOracleWithinRelativeError)
{
    // Log-normal-ish latency shape across five decades.
    Rng rng(42);
    std::vector<uint64_t> samples;
    LatencyHistogram h;
    for (int i = 0; i < 20000; ++i) {
        double v = std::exp(rng.nextGaussian() * 1.6 + 10.0);
        uint64_t ns = static_cast<uint64_t>(v);
        samples.push_back(ns);
        h.record(ns);
    }
    std::sort(samples.begin(), samples.end());
    const double err = 1.0 / 32.0;  // 2^-subBits for subBits = 5
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        size_t rank = static_cast<size_t>(
            std::ceil(q * static_cast<double>(samples.size())));
        uint64_t oracle = samples[std::min(rank ? rank - 1 : 0,
                                           samples.size() - 1)];
        uint64_t got = h.quantile(q);
        // The histogram returns an upper bucket bound: never below
        // the oracle's bucket, within the relative error above it.
        EXPECT_GE(got,
                  static_cast<uint64_t>(
                      static_cast<double>(oracle) * (1.0 - err)))
            << "q=" << q;
        EXPECT_LE(static_cast<double>(got),
                  static_cast<double>(oracle) * (1.0 + 2.0 * err))
            << "q=" << q;
    }
}

TEST(LoadgenHistogram, MergeMatchesSingleHistogram)
{
    Rng rng(7);
    LatencyHistogram whole, a, b;
    for (int i = 0; i < 5000; ++i) {
        uint64_t v = rng.nextBelow(10u * 1000 * 1000);
        whole.record(v);
        (i % 2 ? a : b).record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_EQ(a.minValue(), whole.minValue());
    EXPECT_EQ(a.maxValue(), whole.maxValue());
    for (double q : {0.25, 0.5, 0.9, 0.99})
        EXPECT_EQ(a.quantile(q), whole.quantile(q)) << "q=" << q;
}

TEST(LoadgenHistogram, ClearDropsValuesKeepsShape)
{
    LatencyHistogram h(4);
    h.record(123456);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.subBucketBits(), 4u);
}

// ----------------------------------------------------------- arrival

TEST(LoadgenArrival, SameSeedSameSchedule)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::PoissonOpen;
    spec.ratePerActorHz = 50000;
    ArrivalProcess a(spec, 99), b(spec, 99), c(spec, 100);
    bool diverged = false;
    uint64_t prev = 0;
    for (int i = 0; i < 1000; ++i) {
        uint64_t va = a.nextScheduleNs();
        EXPECT_EQ(va, b.nextScheduleNs());
        if (va != c.nextScheduleNs())
            diverged = true;
        EXPECT_GE(va, prev);  // schedules never go backwards
        prev = va;
    }
    EXPECT_TRUE(diverged) << "different seeds produced one schedule";
}

TEST(LoadgenArrival, PoissonMeanGapApproximatesRate)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::PoissonOpen;
    spec.ratePerActorHz = 10000;  // mean gap 100us
    ArrivalProcess p(spec, 5);
    const int n = 20000;
    uint64_t last = 0;
    for (int i = 0; i < n; ++i)
        last = p.nextScheduleNs();
    double mean_gap = static_cast<double>(last) / n;
    EXPECT_NEAR(mean_gap, 100000.0, 5000.0);
}

TEST(LoadgenArrival, TokenBucketBoundsScheduleToRate)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::TokenBucket;
    spec.ratePerActorHz = 1000;  // 1ms sustained gap
    spec.burst = 8;
    ArrivalProcess p(spec, 11);
    // The first `burst` arrivals may all be immediate...
    for (uint32_t i = 0; i < spec.burst; ++i)
        EXPECT_EQ(p.nextScheduleNs(), 0u);
    // ...then the schedule is clamped to the sustained rate: arrival
    // i is never earlier than (i + 1 - burst) / rate.
    for (uint32_t i = spec.burst; i < 100; ++i) {
        uint64_t due = p.nextScheduleNs();
        uint64_t floor_ns =
            static_cast<uint64_t>(i + 1 - spec.burst) * 1000000ull;
        EXPECT_GE(due, floor_ns) << "arrival " << i;
    }
}

TEST(LoadgenArrival, ClosedLoopThinkTimeMatchesMean)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::ClosedLoop;
    spec.thinkMeanNs = 50000;
    ArrivalProcess p(spec, 3);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(p.nextThinkNs());
    EXPECT_NEAR(sum / n, 50000.0, 2500.0);

    ArrivalSpec no_think;
    ArrivalProcess q(no_think, 3);
    EXPECT_EQ(q.nextThinkNs(), 0u);
    EXPECT_FALSE(q.openLoop());
}

// ------------------------------------------------- orchestrator

/**
 * A test target whose sessions log (actor, global sequence) into a
 * shared journal — enough to observe the phase barrier from outside.
 */
class JournalTarget : public TrafficTarget
{
  public:
    struct Entry
    {
        uint64_t actor;
        uint64_t opIndex;  //!< per-session running request count
    };

    std::string name() const override { return "journal"; }

    std::unique_ptr<ActorSession> startSession(
        uint64_t actor_id, uint64_t, TraceSink *) override
    {
        return std::make_unique<Session>(*this, actor_id);
    }

    std::vector<Entry> entries;  //!< append-ordered request log
    std::mutex mtx;

  private:
    class Session : public ActorSession
    {
      public:
        Session(JournalTarget &t, uint64_t actor) : t(t), actor(actor)
        {
        }

        void
        request(Rng &) override
        {
            std::lock_guard<std::mutex> lk(t.mtx);
            t.entries.push_back({actor, ops++});
        }

        uint64_t traceOps() const override { return ops; }

      private:
        JournalTarget &t;
        uint64_t actor;
        uint64_t ops = 0;
    };
};

TEST(OrchestratorBarrier, NoActorEntersNextPhaseEarly)
{
    // Three equal-count phases: with per-session op indices, entry e
    // belongs to phase e.opIndex / kOps. The barrier guarantee is
    // that the journal is partitioned: every phase-p entry precedes
    // every phase-(p+1) entry, whatever the executor interleaving.
    constexpr uint64_t kOps = 50;
    JournalTarget target;
    std::vector<PhaseSpec> phases{closedPhase("p0", kOps),
                                  closedPhase("p1", kOps),
                                  closedPhase("p2", kOps)};
    OrchestratorConfig cfg;
    cfg.actors = 4;
    cfg.jobs = 4;
    Orchestrator orch(target, phases, cfg);
    TrafficResult res = orch.run();
    ASSERT_EQ(res.totalRequests, 3 * 4 * kOps);
    ASSERT_EQ(target.entries.size(), 3 * 4 * kOps);

    uint64_t current_phase = 0;
    for (const auto &e : target.entries) {
        uint64_t phase = e.opIndex / kOps;
        EXPECT_GE(phase, current_phase)
            << "actor " << e.actor << " ran phase " << phase
            << " work after phase " << current_phase << " began";
        current_phase = std::max(current_phase, phase);
    }
    ASSERT_EQ(res.phases.size(), 3u);
    for (const auto &ps : res.phases) {
        EXPECT_EQ(ps.requests, 4 * kOps);
        EXPECT_EQ(ps.latency.count(), 4 * kOps);
    }
}

TEST(OrchestratorDeterminism, OpCountsInvariantAcrossJobs)
{
    // The op stream must be a pure function of (target, phases,
    // seed): run the same spec strictly serial and with the full
    // pool, closed and open loop, and compare emitted op counts.
    auto run_once = [](unsigned jobs) {
        auto target = makeTrafficTarget("kv-get", 0.05);
        std::vector<PhaseSpec> phases{
            closedPhase("closed", 40),
            poissonPhase("open", 40, 200000.0),
            tokenBucketPhase("bucket", 40, 200000.0, 4),
        };
        OrchestratorConfig cfg;
        cfg.actors = 3;
        cfg.jobs = jobs;
        cfg.seed = 77;
        Orchestrator orch(*target, phases, cfg);
        return orch.run();
    };
    TrafficResult serial = run_once(1);
    TrafficResult pooled = run_once(4);
    EXPECT_EQ(serial.totalRequests, 3u * 3u * 40u);
    EXPECT_EQ(serial.totalRequests, pooled.totalRequests);
    EXPECT_EQ(serial.totalTraceOps, pooled.totalTraceOps);
    ASSERT_EQ(serial.phases.size(), pooled.phases.size());
    for (size_t i = 0; i < serial.phases.size(); ++i) {
        EXPECT_EQ(serial.phases[i].requests, pooled.phases[i].requests);
        EXPECT_EQ(serial.phases[i].traceOps,
                  pooled.phases[i].traceOps)
            << "phase " << serial.phases[i].name;
    }
}

TEST(OrchestratorDeterminism, SameSeedSameOps)
{
    auto total_ops = [](uint64_t seed) {
        auto target = makeTrafficTarget("sql-filter", 0.05);
        std::vector<PhaseSpec> phases{closedPhase("steady", 10)};
        OrchestratorConfig cfg;
        cfg.actors = 2;
        cfg.seed = seed;
        Orchestrator orch(*target, phases, cfg);
        return orch.run().totalTraceOps;
    };
    EXPECT_EQ(total_ops(5), total_ops(5));
    // Different seeds draw different predicates, so the filtered row
    // counts — and the traced op totals — move.
    EXPECT_NE(total_ops(5), total_ops(6));
}

TEST(OrchestratorRecording, RecordsActorZeroOnly)
{
    auto target = makeTrafficTarget("kv-get", 0.05);
    std::vector<PhaseSpec> phases{closedPhase("steady", 20)};
    OrchestratorConfig cfg;
    cfg.actors = 2;
    cfg.seed = 9;
    cfg.recordActor0 = true;
    Orchestrator orch(*target, phases, cfg);
    TrafficResult res = orch.run();
    const std::vector<MicroOp> &ops = orch.recordedOps();
    EXPECT_GT(ops.size(), 0u);
    // Actor 0 emitted a strict subset of the run's op stream.
    EXPECT_LT(ops.size(), res.totalTraceOps);
}

TEST(OrchestratorTargets, RosterConstructsAndServes)
{
    for (const std::string &name : trafficTargetNames()) {
        auto target = makeTrafficTarget(name, 0.05);
        ASSERT_NE(target, nullptr) << name;
        EXPECT_EQ(target->name(), name);
        std::vector<PhaseSpec> phases{closedPhase("smoke", 3)};
        OrchestratorConfig cfg;
        cfg.actors = 2;
        Orchestrator orch(*target, phases, cfg);
        TrafficResult res = orch.run();
        EXPECT_EQ(res.totalRequests, 6u) << name;
        EXPECT_GT(res.totalTraceOps, 0u) << name;
        EXPECT_EQ(res.phases.front().latency.count(), 6u) << name;
    }
}

TEST(OrchestratorTargets, UnrecordedPhaseCountsButDoesNotReport)
{
    auto target = makeTrafficTarget("kv-get", 0.05);
    std::vector<PhaseSpec> phases{warmupPhase(5),
                                  closedPhase("steady", 7)};
    OrchestratorConfig cfg;
    cfg.actors = 2;
    Orchestrator orch(*target, phases, cfg);
    TrafficResult res = orch.run();
    ASSERT_EQ(res.phases.size(), 1u);
    EXPECT_EQ(res.phases.front().name, "steady");
    EXPECT_EQ(res.phases.front().requests, 2u * 7u);
    EXPECT_EQ(res.totalRequests, 2u * (5u + 7u));
}

} // namespace
} // namespace wcrt
