/**
 * @file
 * Tests for the shared-memory ring transport (tracefile/shm_ring.hh):
 * ring mechanics (wrap-around, backpressure, liveness), the
 * sink/source layer's byte identity with the file path, error parity
 * with corrupt/truncated files, and true cross-process operation via
 * fork — including a producer killed mid-chunk.
 *
 * Suite naming is load-bearing for CI: `ShmRing*` and `ShmTransport*`
 * are thread-based and run under TSan; `ShmProcess*` forks (and
 * SIGKILLs) children, so it runs in the ASan job and the regular
 * matrix but stays out of the TSan filter.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tracefile/shm_ring.hh"
#include "tracefile/trace_reader.hh"
#include "tracefile/trace_source.hh"
#include "tracefile/trace_writer.hh"

#if defined(__unix__) || defined(__APPLE__)
#define WCRT_TEST_HAS_FORK 1
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>
#else
#define WCRT_TEST_HAS_FORK 0
#endif

namespace wcrt {
namespace {

namespace fs = std::filesystem;

/** Unique ring name per test and per run (stale names are unlinked). */
std::string
testRing(const std::string &tag)
{
#if WCRT_TEST_HAS_FORK
    std::string pid = std::to_string(::getpid());
#else
    std::string pid = "0";
#endif
    std::string name = "wcrt.test." + pid + "." + tag;
    ShmRing::unlink(name);
    return name;
}

std::string
tempTracePath(const std::string &tag)
{
#if WCRT_TEST_HAS_FORK
    std::string pid = std::to_string(::getpid());
#else
    std::string pid = "0";
#endif
    // ctest runs tests as parallel processes; keep scratch files
    // per-process so suites never stomp each other's traces.
    return (fs::temp_directory_path() /
            ("wcrt-shmtest-" + pid + "-" + tag + ".wtrace"))
        .string();
}

/** Sink that records every op for field-level comparison. */
class RecordingSink : public TraceSink
{
  public:
    void consume(const MicroOp &op) override { ops.push_back(op); }
    std::vector<MicroOp> ops;
};

void
expectOpsEqual(const std::vector<MicroOp> &a,
               const std::vector<MicroOp> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("op " + std::to_string(i));
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].purpose, b[i].purpose);
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].size, b[i].size);
        EXPECT_EQ(a[i].memAddr, b[i].memAddr);
        EXPECT_EQ(a[i].memSize, b[i].memSize);
        EXPECT_EQ(a[i].target, b[i].target);
        EXPECT_EQ(a[i].taken, b[i].taken);
    }
}

/** Ops exercising every encoder path, including the extension byte. */
std::vector<MicroOp>
awkwardOps()
{
    std::vector<MicroOp> ops;

    MicroOp alu;
    alu.kind = OpKind::IntAlu;
    alu.purpose = IntPurpose::IntAddress;
    alu.pc = 0x400000;
    ops.push_back(alu);

    MicroOp load;
    load.kind = OpKind::Load;
    load.pc = 0x400004;
    load.memAddr = 0x7fff0000;
    load.memSize = 8;
    ops.push_back(load);

    MicroOp store;
    store.kind = OpKind::Store;
    store.pc = 0x3ffff0;
    store.memAddr = 0x1000;
    store.memSize = 1;
    ops.push_back(store);

    MicroOp branch;
    branch.kind = OpKind::BranchCond;
    branch.pc = 0x400010;
    branch.target = 0x400800;
    branch.taken = true;
    ops.push_back(branch);

    MicroOp weird_size;
    weird_size.kind = OpKind::IntMul;
    weird_size.pc = 0x400014;
    weird_size.size = 12;
    ops.push_back(weird_size);

    MicroOp far_pc;
    far_pc.kind = OpKind::Other;
    far_pc.pc = 0xffff800000000000ull;
    ops.push_back(far_pc);

    return ops;
}

CodeLayout
sampleLayout()
{
    CodeLayout layout;
    layout.addFunction("app.kernel", CodeLayer::Application, 512);
    layout.addFunction("fw.shuffle", CodeLayer::Framework, 65536);
    layout.addFunction("libc.memcpy", CodeLayer::Library, 4096);
    return layout;
}

TraceMeta
sampleMeta()
{
    TraceMeta meta;
    meta.workload = "T-Shm";
    meta.category = AppCategory::Service;
    meta.stackKind = StackKind::Spark;
    meta.scale = 0.125;
    return meta;
}

IoCounters
sampleIo()
{
    IoCounters io;
    io.diskReadBytes = 123456;
    io.diskWriteBytes = 7890;
    io.networkBytes = 42;
    return io;
}

DataBehavior
sampleData()
{
    DataBehavior data;
    data.inputBytes = 1 << 20;
    data.intermediateBytes = 1 << 18;
    data.outputBytes = 1 << 10;
    return data;
}

/** The `.wtrace` file the equivalent file-backed capture writes. */
std::vector<uint8_t>
fileBytesFor(const std::vector<MicroOp> &ops, uint32_t chunk_ops)
{
    std::string path = tempTracePath("reference");
    {
        TraceWriter writer(path, sampleMeta(), sampleLayout(),
                           chunk_ops);
        for (const auto &op : ops)
            writer.consume(op);
        writer.finish(sampleIo(), sampleData());
    }
    std::ifstream f(path, std::ios::binary);
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    fs::remove(path);
    return bytes;
}

/** Stream the same ops through a ring; returns the drained bytes. */
std::vector<uint8_t>
ringBytesFor(const std::vector<MicroOp> &ops, uint32_t chunk_ops,
             const std::string &tag)
{
    std::string name = testRing(tag);
    ShmRing prod = ShmRing::create(name, ShmRing::Role::Producer,
                                   64 * 1024);
    ShmRing cons = ShmRing::open(name, ShmRing::Role::Consumer);

    std::thread producer([&] {
        ShmChunkSink sink(prod, sampleMeta(), sampleLayout(),
                          ShmPolicy::Block, chunk_ops);
        for (const auto &op : ops)
            sink.consume(op);
        sink.finish(sampleIo(), sampleData());
    });
    ShmSource drained(cons);
    producer.join();
    EXPECT_TRUE(cons.endOfStream());
    EXPECT_FALSE(drained.peerDied());
    ShmRing::unlink(name);
    return *drained.payload();
}

TEST(ShmRing, CreateOpenValidate)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::string name = testRing("create");
    ShmRing prod = ShmRing::create(name, ShmRing::Role::Producer, 100);
    EXPECT_EQ(prod.capacity(), 128u);  // rounded up to a power of two
    EXPECT_EQ(prod.name(), name);

    // A second create of a live name must fail; open() must attach.
    EXPECT_THROW(ShmRing::create(name, ShmRing::Role::Producer),
                 TraceFormatError);
    ShmRing cons = ShmRing::open(name, ShmRing::Role::Consumer);
    EXPECT_EQ(cons.capacity(), 128u);

    EXPECT_THROW(ShmRing::create("bad/name", ShmRing::Role::Producer),
                 TraceFormatError);
    EXPECT_THROW(ShmRing::open("wcrt.test.absent",
                               ShmRing::Role::Consumer, 50),
                 TraceFormatError);
    ShmRing::unlink(name);
    ShmRing::unlink(name);  // idempotent
}

TEST(ShmRing, RejectsFrameLargerThanCapacity)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::string name = testRing("oversize");
    ShmRing prod = ShmRing::create(name, ShmRing::Role::Producer, 64);
    std::vector<uint8_t> frame(65, 0xab);
    EXPECT_THROW(prod.push(frame.data(), frame.size(),
                           ShmPolicy::Block),
                 TraceFormatError);
    ShmRing::unlink(name);
}

TEST(ShmRing, WrapAroundAtEveryOffset)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::string name = testRing("wrap");
    ShmRing prod = ShmRing::create(name, ShmRing::Role::Producer, 64);
    ShmRing cons = ShmRing::open(name, ShmRing::Role::Consumer);
    ASSERT_EQ(prod.capacity(), 64u);

    // 13 is coprime with 64, so 64 pushes of 13 bytes start a frame at
    // every offset mod capacity; reading back in 5-byte nibbles makes
    // the copy-out wrap at unaligned offsets too. Then sweep every
    // frame length 1..64 (including the exactly-full frame) for the
    // copy-in split at both segment sizes.
    uint64_t written = 0;
    auto roundTrip = [&](size_t len) {
        std::vector<uint8_t> frame(len);
        for (size_t i = 0; i < len; ++i)
            frame[i] = static_cast<uint8_t>((written + i) & 0xff);
        ASSERT_TRUE(prod.push(frame.data(), len, ShmPolicy::Block));
        written += len;
        std::vector<uint8_t> got;
        uint8_t nibble[5];
        while (got.size() < len) {
            size_t n = cons.pull(nibble, sizeof(nibble));
            ASSERT_GT(n, 0u);
            got.insert(got.end(), nibble, nibble + n);
        }
        ASSERT_EQ(got.size(), len);
        EXPECT_EQ(got, frame);
        EXPECT_EQ(prod.used(), 0u);
    };
    for (int k = 0; k < 64; ++k)
        roundTrip(13);
    for (size_t len = 1; len <= 64; ++len)
        roundTrip(len);
    ShmRing::unlink(name);
}

TEST(ShmRing, FullRingBlockBackpressureLosesNothing)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::string name = testRing("block");
    ShmRing prod = ShmRing::create(name, ShmRing::Role::Producer, 64);
    ShmRing cons = ShmRing::open(name, ShmRing::Role::Consumer);

    // 10000 bytes through a 64-byte ring: the producer must block on
    // the full ring (7-byte frames, so it fills within a few pushes)
    // and every byte must come out in order.
    constexpr size_t total = 10000;
    std::thread producer([&] {
        uint8_t frame[7];
        size_t sent = 0;
        while (sent < total) {
            size_t len = std::min<size_t>(sizeof(frame), total - sent);
            for (size_t i = 0; i < len; ++i)
                frame[i] = static_cast<uint8_t>((sent + i) & 0xff);
            ASSERT_TRUE(prod.push(frame, len, ShmPolicy::Block));
            sent += len;
        }
        prod.finishProducer();
    });

    std::vector<uint8_t> got;
    uint8_t buf[23];
    size_t n;
    while ((n = cons.pullWait(buf, sizeof(buf))) != 0)
        got.insert(got.end(), buf, buf + n);
    producer.join();

    EXPECT_TRUE(cons.endOfStream());
    EXPECT_FALSE(cons.peerDied());
    ASSERT_EQ(got.size(), total);
    for (size_t i = 0; i < total; ++i)
        ASSERT_EQ(got[i], static_cast<uint8_t>(i & 0xff))
            << "byte " << i;
    EXPECT_EQ(prod.droppedFrames(), 0u);
    ShmRing::unlink(name);
}

TEST(ShmRing, DropPolicyDropsWholeFramesOnly)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::string name = testRing("drop");
    ShmRing prod = ShmRing::create(name, ShmRing::Role::Producer, 64);
    ShmRing cons = ShmRing::open(name, ShmRing::Role::Consumer);

    // Nobody pulls: 4 16-byte frames fill the ring exactly, the rest
    // must be refused without blocking and without partial writes.
    std::vector<int> accepted;
    for (int f = 0; f < 7; ++f) {
        uint8_t frame[16];
        for (size_t i = 0; i < sizeof(frame); ++i)
            frame[i] = static_cast<uint8_t>(f);
        if (prod.push(frame, sizeof(frame), ShmPolicy::Drop))
            accepted.push_back(f);
        else
            prod.noteDropped(1, 16);
    }
    EXPECT_EQ(accepted, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(prod.droppedFrames(), 3u);
    EXPECT_EQ(prod.droppedOps(), 48u);
    EXPECT_EQ(cons.droppedFrames(), 3u);  // visible on both sides
    prod.finishProducer();

    std::vector<uint8_t> got;
    uint8_t buf[64];
    size_t n;
    while ((n = cons.pullWait(buf, sizeof(buf))) != 0)
        got.insert(got.end(), buf, buf + n);
    ASSERT_EQ(got.size(), 64u);
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], static_cast<uint8_t>(i / 16));
    ShmRing::unlink(name);
}

TEST(ShmRing, SilentProducerYieldsPeerDeathNotHang)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::string name = testRing("silent");
    ShmRing prod = ShmRing::create(name, ShmRing::Role::Producer, 1024,
                                   /*heartbeat_timeout_ms=*/100);
    ShmRing cons = ShmRing::open(name, ShmRing::Role::Consumer);

    uint8_t some[32] = {};
    ASSERT_TRUE(prod.push(some, sizeof(some), ShmPolicy::Block));
    // The producer goes silent without finishProducer(): the consumer
    // must drain the pushed bytes and then get a bounded-time EOF
    // flagged as peer death, never a hang.
    uint8_t buf[64];
    EXPECT_EQ(cons.pullWait(buf, sizeof(buf)), sizeof(some));
    EXPECT_EQ(cons.pullWait(buf, sizeof(buf)), 0u);
    EXPECT_TRUE(cons.peerDied());
    EXPECT_FALSE(cons.endOfStream());
    ShmRing::unlink(name);
}

TEST(ShmRing, HeartbeatThreadKeepsSlowProducerAlive)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::string name = testRing("slowprod");
    ShmRing prod = ShmRing::create(name, ShmRing::Role::Producer, 1024,
                                   /*heartbeat_timeout_ms=*/100);
    // Liveness decoupled from data flow: with the background beater
    // running, a producer that pushes nothing for several timeouts
    // (slow workload setup, sparse chunk flushes) must not be
    // declared dead by a waiting consumer.
    prod.startHeartbeat();
    ShmRing cons = ShmRing::open(name, ShmRing::Role::Consumer);

    uint8_t frame[16];
    for (size_t i = 0; i < sizeof(frame); ++i)
        frame[i] = static_cast<uint8_t>(i);
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        ASSERT_TRUE(prod.push(frame, sizeof(frame), ShmPolicy::Block));
        prod.finishProducer();
    });

    std::vector<uint8_t> got;
    uint8_t buf[64];
    size_t n;
    while ((n = cons.pullWait(buf, sizeof(buf))) != 0)
        got.insert(got.end(), buf, buf + n);
    producer.join();

    EXPECT_FALSE(cons.peerDied());
    EXPECT_TRUE(cons.endOfStream());
    EXPECT_EQ(got, std::vector<uint8_t>(frame, frame + sizeof(frame)));
    ShmRing::unlink(name);
}

TEST(ShmRing, BlockPushBoundsNeverAttachedConsumerWait)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::string name = testRing("noconsumer");
    ShmRing prod = ShmRing::create(name, ShmRing::Role::Producer, 64);
    prod.setNoConsumerTimeout(100);

    uint8_t frame[32] = {};
    ASSERT_TRUE(prod.push(frame, sizeof(frame), ShmPolicy::Block));
    ASSERT_TRUE(prod.push(frame, sizeof(frame), ShmPolicy::Block));
    // Ring full, nobody has ever attached: the bound must turn the
    // would-be-forever wait into an error.
    EXPECT_THROW(prod.push(frame, sizeof(frame), ShmPolicy::Block),
                 TraceFormatError);
    // ... and once a push gave up, later pushes on the same handle
    // fail fast (the stream lost a frame) instead of stacking
    // another full-length wait — sink teardown pushes a footer.
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(prod.push(frame, sizeof(frame), ShmPolicy::Block),
                 TraceFormatError);
    auto retry = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
    EXPECT_LT(retry.count(), 50);
    ShmRing::unlink(name);

    // Once any consumer has attached the bound is disarmed for good:
    // a full ring behind a slow analyzer — or across a clean
    // detach/re-attach — is legitimate backpressure, not absence.
    std::string name2 = testRing("noconsumer2");
    ShmRing prod2 = ShmRing::create(name2, ShmRing::Role::Producer, 64);
    prod2.setNoConsumerTimeout(100);
    {
        ShmRing cons = ShmRing::open(name2, ShmRing::Role::Consumer);
    }
    ASSERT_TRUE(prod2.push(frame, sizeof(frame), ShmPolicy::Block));
    ASSERT_TRUE(prod2.push(frame, sizeof(frame), ShmPolicy::Block));
    std::thread late([&] {
        // Well past the 100 ms no-consumer bound before re-attaching.
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        ShmRing cons = ShmRing::open(name2, ShmRing::Role::Consumer);
        uint8_t buf[64];
        size_t drained = 0;
        while (drained < 64) {
            size_t n = cons.pullWait(buf, sizeof(buf));
            ASSERT_GT(n, 0u);
            drained += n;
        }
    });
    EXPECT_TRUE(prod2.push(frame, sizeof(frame), ShmPolicy::Block));
    late.join();
    ShmRing::unlink(name2);
}

#if WCRT_TEST_HAS_FORK

TEST(ShmRing, OpenWaitsOutAnUnsizedRing)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::string name = testRing("unsized");
    // Freeze a creator mid-create: the object exists but has not been
    // ftruncate'd yet, exactly what a racing open() can observe
    // between shm_open(O_CREAT|O_EXCL) and ftruncate.
    int fd = ::shm_open(("/" + name).c_str(), O_CREAT | O_RDWR, 0600);
    ASSERT_GE(fd, 0);
    ::close(fd);

    // open() must keep polling — not reject the stub as "too small"
    // — and only throw the appearance timeout at the deadline.
    auto t0 = std::chrono::steady_clock::now();
    try {
        ShmRing::open(name, ShmRing::Role::Consumer, 150);
        FAIL() << "open of an unsized ring must time out";
    } catch (const TraceFormatError &err) {
        EXPECT_NE(std::string(err.what()).find("timed out"),
                  std::string::npos)
            << err.what();
    }
    auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
    EXPECT_GE(waited.count(), 100);

    // And when the stub becomes a real ring mid-wait (here replaced
    // wholesale, as a recovering serve would), the same open attaches.
    std::thread creator([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        ShmRing::unlink(name);
        ShmRing keep =
            ShmRing::create(name, ShmRing::Role::Producer, 256);
    });
    ShmRing cons = ShmRing::open(name, ShmRing::Role::Consumer, 2000);
    creator.join();
    EXPECT_EQ(cons.capacity(), 256u);
    ShmRing::unlink(name);
}

#endif // WCRT_TEST_HAS_FORK

TEST(ShmRing, ConsumerRestartReattachesMidStream)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::string name = testRing("reattach");
    ShmRing prod = ShmRing::create(name, ShmRing::Role::Producer, 64,
                                   /*heartbeat_timeout_ms=*/200);

    constexpr size_t total = 2000;
    std::thread producer([&] {
        uint8_t frame[8];
        size_t sent = 0;
        while (sent < total) {
            size_t len = std::min<size_t>(sizeof(frame), total - sent);
            for (size_t i = 0; i < len; ++i)
                frame[i] = static_cast<uint8_t>((sent + i) & 0xff);
            ASSERT_TRUE(prod.push(frame, len, ShmPolicy::Block));
            sent += len;
        }
        prod.finishProducer();
    });

    // Analyzer A drains part of the stream, detaches cleanly (its
    // destructor clears the attached flag, so the blocked producer
    // keeps waiting instead of declaring it dead), then analyzer B
    // re-attaches and finishes the drain. Byte continuity must hold
    // across the handoff — well past the 200 ms heartbeat timeout.
    std::vector<uint8_t> got;
    {
        ShmRing a = ShmRing::open(name, ShmRing::Role::Consumer);
        uint8_t buf[16];
        while (got.size() < 500) {
            size_t n = a.pullWait(buf, sizeof(buf));
            ASSERT_GT(n, 0u);
            got.insert(got.end(), buf, buf + n);
        }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    {
        ShmRing b = ShmRing::open(name, ShmRing::Role::Consumer);
        uint8_t buf[16];
        size_t n;
        while ((n = b.pullWait(buf, sizeof(buf))) != 0)
            got.insert(got.end(), buf, buf + n);
        EXPECT_TRUE(b.endOfStream());
        EXPECT_FALSE(b.peerDied());
    }
    producer.join();

    ASSERT_EQ(got.size(), total);
    for (size_t i = 0; i < total; ++i)
        ASSERT_EQ(got[i], static_cast<uint8_t>(i & 0xff))
            << "byte " << i;
    ShmRing::unlink(name);
}

TEST(ShmTransport, RingStreamBitIdenticalToFile)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::vector<MicroOp> ops;
    auto sample = awkwardOps();
    for (int rep = 0; rep < 50; ++rep)
        for (const auto &op : sample)
            ops.push_back(op);

    std::vector<uint8_t> via_file = fileBytesFor(ops, 7);
    std::vector<uint8_t> via_ring = ringBytesFor(ops, 7, "identical");
    ASSERT_GT(via_file.size(), 0u);
    EXPECT_EQ(via_file, via_ring);
}

TEST(ShmTransport, ReaderOverRingMatchesFileReader)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::vector<MicroOp> ops;
    auto sample = awkwardOps();
    for (int rep = 0; rep < 30; ++rep)
        for (const auto &op : sample)
            ops.push_back(op);

    std::string path = tempTracePath("reader");
    {
        TraceWriter writer(path, sampleMeta(), sampleLayout(), 7);
        for (const auto &op : ops)
            writer.consume(op);
        writer.finish(sampleIo(), sampleData());
    }
    TraceReader file_reader(path);

    auto stream = std::make_shared<const std::vector<uint8_t>>(
        ringBytesFor(ops, 7, "reader"));
    TraceReader shm_reader(std::make_unique<ShmSource>(stream),
                           "shm:reader");
    EXPECT_STREQ(shm_reader.ioName(), "shm");
    EXPECT_EQ(shm_reader.path(), "shm:reader");

    EXPECT_EQ(file_reader.opCount(), shm_reader.opCount());
    EXPECT_EQ(file_reader.chunkCount(), shm_reader.chunkCount());
    EXPECT_EQ(file_reader.payloadBytes(), shm_reader.payloadBytes());
    EXPECT_EQ(file_reader.meta().workload, shm_reader.meta().workload);
    EXPECT_EQ(file_reader.io().diskReadBytes,
              shm_reader.io().diskReadBytes);
    EXPECT_EQ(file_reader.data().inputBytes,
              shm_reader.data().inputBytes);

    RecordingSink via_file;
    file_reader.replayInto(via_file);
    RecordingSink via_shm;
    shm_reader.replayInto(via_shm);
    expectOpsEqual(via_file.ops, via_shm.ops);
    expectOpsEqual(ops, via_shm.ops);
    fs::remove(path);
}

TEST(ShmTransport, ShmStreamsNeverEnterCrcTrustRegistry)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    auto stream = std::make_shared<const std::vector<uint8_t>>(
        ringBytesFor(awkwardOps(), 3, "trust"));

    // Under CrcMode::Once a file promotes itself into the process
    // trust registry after one checked replay. A ring stream has no
    // durable identity (same name, different bytes next run), so Once
    // must keep checking every replay and never register the name.
    TraceReader reader(std::make_unique<ShmSource>(stream), "shm:trust",
                       ReaderOptions{TraceIo::Auto, CrcMode::Once});
    uint64_t base = reader.chunkCrcChecks();  // open-time validation
    RecordingSink s1;
    reader.replayInto(s1);
    uint64_t per_replay = reader.chunkCrcChecks() - base;
    EXPECT_GT(per_replay, 0u);
    RecordingSink s2;
    reader.replayInto(s2);
    EXPECT_EQ(reader.chunkCrcChecks() - base, 2 * per_replay);
    EXPECT_FALSE(traceVerifiedInProcess("shm:trust"));
}

TEST(ShmTransport, CorruptAndTruncatedStreamsFailLikeFiles)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::vector<MicroOp> ops;
    auto sample = awkwardOps();
    for (int rep = 0; rep < 10; ++rep)
        for (const auto &op : sample)
            ops.push_back(op);
    std::vector<uint8_t> bytes = ringBytesFor(ops, 3, "corrupt");
    ASSERT_GT(bytes.size(), 200u);

    // Both transports get the same display name, so "identical
    // errors" is exact string equality.
    std::string path = tempTracePath("parity");
    auto errorVia = [&](const std::vector<uint8_t> &b,
                        bool via_shm) -> std::string {
        try {
            ReaderOptions opts{TraceIo::Auto, CrcMode::Always};
            RecordingSink sink;
            if (via_shm) {
                auto shared =
                    std::make_shared<const std::vector<uint8_t>>(b);
                TraceReader reader(std::make_unique<ShmSource>(shared),
                                   path, opts);
                reader.replayInto(sink);
            } else {
                std::ofstream out(path,
                                  std::ios::binary | std::ios::trunc);
                out.write(reinterpret_cast<const char *>(b.data()),
                          static_cast<std::streamsize>(b.size()));
                out.close();
                TraceReader reader(path, opts);
                reader.replayInto(sink);
            }
        } catch (const TraceFormatError &err) {
            return err.what();
        }
        return {};
    };

    // Flipped byte inside a chunk payload: CRC mismatch on replay.
    std::vector<uint8_t> corrupt = bytes;
    corrupt[bytes.size() / 2] ^= 0x40;
    std::string file_err = errorVia(corrupt, false);
    std::string shm_err = errorVia(corrupt, true);
    ASSERT_FALSE(file_err.empty());
    EXPECT_EQ(file_err, shm_err);

    // Truncation at assorted depths (header, mid-chunk, lost footer).
    for (size_t len : {size_t{0}, size_t{9}, size_t{40},
                       bytes.size() / 3, bytes.size() - 1}) {
        SCOPED_TRACE("prefix length " + std::to_string(len));
        std::vector<uint8_t> prefix(bytes.begin(),
                                    bytes.begin() +
                                        static_cast<long>(len));
        std::string f = errorVia(prefix, false);
        std::string s = errorVia(prefix, true);
        ASSERT_FALSE(f.empty());
        EXPECT_EQ(f, s);
    }
    fs::remove(path);
}

TEST(ShmTransport, DropPolicyStreamStillValidates)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::string name = testRing("lossy");
    ShmRing prod = ShmRing::create(name, ShmRing::Role::Producer, 512);
    ShmRing cons = ShmRing::open(name, ShmRing::Role::Consumer);

    std::vector<MicroOp> ops;
    auto sample = awkwardOps();
    for (int rep = 0; rep < 40; ++rep)
        for (const auto &op : sample)
            ops.push_back(op);

    // No concurrent consumer while ops stream in, so the little ring
    // fills and Drop policy must discard whole chunks,
    // deterministically. Drain what fits before finish() so the
    // (never-droppable, Block-pushed) footer has room.
    std::vector<uint8_t> bytes;
    ShmChunkSink sink(prod, sampleMeta(), sampleLayout(),
                      ShmPolicy::Drop, 5);
    for (const auto &op : ops)
        sink.consume(op);
    EXPECT_GT(sink.chunksDropped(), 0u);
    EXPECT_EQ(sink.opsDropped() + sink.opsStreamed(), ops.size());
    EXPECT_EQ(prod.droppedFrames(), sink.chunksDropped());

    uint8_t buf[64];
    size_t n;
    while ((n = cons.pull(buf, sizeof(buf))) != 0)
        bytes.insert(bytes.end(), buf, buf + n);
    sink.finish(sampleIo(), sampleData());
    while ((n = cons.pullWait(buf, sizeof(buf))) != 0)
        bytes.insert(bytes.end(), buf, buf + n);
    EXPECT_TRUE(cons.endOfStream());

    // The lossy stream is still a fully valid trace: intact framing,
    // intact CRCs, and a footer op count matching the surviving ops.
    auto shared =
        std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
    TraceReader reader(std::make_unique<ShmSource>(shared), "shm:lossy");
    RecordingSink decoded;
    reader.replayInto(decoded);
    EXPECT_EQ(decoded.ops.size(), sink.opsStreamed());
    EXPECT_LT(decoded.ops.size(), ops.size());
    ShmRing::unlink(name);
}

TEST(ShmTransport, MultiProducerFanIn)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    constexpr int producers = 3;
    std::vector<std::string> names;
    std::vector<ShmRing> rings;
    std::vector<std::vector<MicroOp>> streams(producers);
    for (int p = 0; p < producers; ++p) {
        names.push_back(testRing("fanin." + std::to_string(p)));
        rings.push_back(ShmRing::create(names.back(),
                                        ShmRing::Role::Producer,
                                        256 * 1024));
        for (int rep = 0; rep < 10 + p; ++rep)
            for (MicroOp op : awkwardOps()) {
                op.pc += static_cast<uint64_t>(p) << 32;
                streams[p].push_back(op);
            }
    }

    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p)
        threads.emplace_back([&, p] {
            TraceMeta meta = sampleMeta();
            meta.workload = "T-Shm-" + std::to_string(p);
            ShmChunkSink sink(rings[static_cast<size_t>(p)], meta,
                              sampleLayout(), ShmPolicy::Block, 7);
            for (const auto &op : streams[static_cast<size_t>(p)])
                sink.consume(op);
            sink.finish(sampleIo(), sampleData());
        });

    // One analyzer drains all three rings and must see each
    // producer's exact stream under its own identity.
    for (int p = 0; p < producers; ++p) {
        ShmRing cons =
            ShmRing::open(names[static_cast<size_t>(p)],
                          ShmRing::Role::Consumer);
        TraceReader reader(std::make_unique<ShmSource>(cons),
                           "shm:" + names[static_cast<size_t>(p)]);
        EXPECT_EQ(reader.meta().workload,
                  "T-Shm-" + std::to_string(p));
        RecordingSink decoded;
        reader.replayInto(decoded);
        expectOpsEqual(streams[static_cast<size_t>(p)], decoded.ops);
    }
    for (auto &t : threads)
        t.join();
    for (const auto &n : names)
        ShmRing::unlink(n);
}

#if WCRT_TEST_HAS_FORK

/**
 * Fork-based integration: capture in a child process, analyze in the
 * parent. The producer ring handle is created before fork (MAP_SHARED
 * survives into the child) and the child only pushes pre-encoded
 * bytes — no allocation after fork.
 */
class ShmProcess : public ::testing::Test
{
};

TEST_F(ShmProcess, ForkedProducerStreamsBitIdenticalTrace)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::vector<MicroOp> ops;
    for (int rep = 0; rep < 50; ++rep)
        for (const auto &op : awkwardOps())
            ops.push_back(op);
    std::vector<uint8_t> expected = fileBytesFor(ops, 7);

    std::string name = testRing("fork");
    ShmRing cons = ShmRing::create(name, ShmRing::Role::Consumer,
                                   16 * 1024);
    ShmRing prod = ShmRing::open(name, ShmRing::Role::Producer);

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: push the encoded stream in ring-straining slices,
        // then exit without running any parent-process teardown.
        size_t sent = 0;
        while (sent < expected.size()) {
            size_t len = std::min<size_t>(4096, expected.size() - sent);
            prod.push(expected.data() + sent, len, ShmPolicy::Block);
            sent += len;
        }
        prod.finishProducer();
        ::_exit(0);
    }

    ShmSource drained(cons);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    EXPECT_FALSE(drained.peerDied());
    EXPECT_EQ(*drained.payload(), expected);

    TraceReader reader(std::make_unique<ShmSource>(drained.payload()),
                       "shm:" + name);
    RecordingSink decoded;
    reader.replayInto(decoded);
    expectOpsEqual(ops, decoded.ops);
    ShmRing::unlink(name);
}

TEST_F(ShmProcess, ProducerKilledMidChunkMatchesTruncatedFile)
{
    if (!shmAvailable())
        GTEST_SKIP() << "no shm on this platform";
    std::vector<MicroOp> ops;
    for (int rep = 0; rep < 20; ++rep)
        for (const auto &op : awkwardOps())
            ops.push_back(op);
    std::vector<uint8_t> full = fileBytesFor(ops, 7);
    // Cut mid-chunk: past the header, inside an op payload.
    size_t cut = full.size() / 2;

    std::string name = testRing("kill");
    ShmRing cons = ShmRing::create(name, ShmRing::Role::Consumer,
                                   64 * 1024,
                                   /*heartbeat_timeout_ms=*/150);
    ShmRing prod = ShmRing::open(name, ShmRing::Role::Producer);

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: stream exactly `cut` bytes, then keep heartbeating
        // without finishing until SIGKILLed.
        prod.push(full.data(), cut, ShmPolicy::Block);
        while (true) {
            prod.beat();
            timespec ts{0, 5000000};  // 5 ms
            ::nanosleep(&ts, nullptr);
        }
    }

    // Drain the child's prefix, then kill it mid-stream. The drain
    // must end in bounded time with the death flagged — never a hang.
    std::vector<uint8_t> got;
    uint8_t buf[4096];
    while (got.size() < cut) {
        size_t n = cons.pull(buf, sizeof(buf));
        got.insert(got.end(), buf, buf + n);
    }
    ASSERT_EQ(got.size(), cut);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFSIGNALED(status));

    EXPECT_EQ(cons.pullWait(buf, sizeof(buf)), 0u);
    EXPECT_TRUE(cons.peerDied());
    EXPECT_FALSE(cons.endOfStream());

    // The received prefix must fail exactly like the same bytes
    // truncated on disk (same display name, same error text).
    std::string path = tempTracePath("killed");
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(got.data()),
                  static_cast<std::streamsize>(got.size()));
    }
    auto errorOf = [](auto make) -> std::string {
        try {
            make();
        } catch (const TraceFormatError &err) {
            return err.what();
        }
        return {};
    };
    std::string file_err =
        errorOf([&] { TraceReader r(path); });
    auto shared = std::make_shared<const std::vector<uint8_t>>(got);
    std::string shm_err = errorOf([&] {
        TraceReader r(std::make_unique<ShmSource>(shared), path);
    });
    ASSERT_FALSE(file_err.empty());
    EXPECT_EQ(file_err, shm_err);
    fs::remove(path);
    ShmRing::unlink(name);
}

#endif // WCRT_TEST_HAS_FORK

} // namespace
} // namespace wcrt
