/**
 * @file
 * Unit tests for the trace substrate: code layout, virtual heap,
 * tracer emission semantics and the mix counter.
 */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "trace/code_layout.hh"
#include "trace/idioms.hh"
#include "trace/microop.hh"
#include "trace/mix_counter.hh"
#include "trace/tracer.hh"
#include "trace/virtual_heap.hh"

namespace wcrt {
namespace {

/** Sink that records every op for inspection. */
class RecordingSink : public TraceSink
{
  public:
    void consume(const MicroOp &op) override { ops.push_back(op); }
    std::vector<MicroOp> ops;
};

TEST(CodeLayout, AllocatesDisjointRanges)
{
    CodeLayout layout;
    auto a = layout.addFunction("a", CodeLayer::Application, 100);
    auto b = layout.addFunction("b", CodeLayer::Framework, 4096);
    const auto &fa = layout.function(a);
    const auto &fb = layout.function(b);
    EXPECT_GE(fa.base, CodeLayout::textBase);
    EXPECT_GE(fb.base, fa.base + fa.bytes);
    EXPECT_EQ(fa.bytes % 16, 0u);
    EXPECT_EQ(layout.size(), 2u);
    EXPECT_GE(layout.totalBytes(), 100u + 4096u);
}

TEST(VirtualHeap, PageAlignedDisjointRegions)
{
    VirtualHeap heap;
    auto a = heap.alloc("a", 100);
    auto b = heap.alloc("b", 5000);
    EXPECT_EQ(a.base % VirtualHeap::pageBytes, 0u);
    EXPECT_EQ(b.base % VirtualHeap::pageBytes, 0u);
    EXPECT_GE(b.base, a.base + a.bytes);
    EXPECT_EQ(a.bytes, VirtualHeap::pageBytes);
    EXPECT_EQ(b.bytes, 2 * VirtualHeap::pageBytes);
}

TEST(VirtualHeap, ElementAddressing)
{
    VirtualHeap heap;
    auto r = heap.alloc("arr", 4096);
    EXPECT_EQ(r.element(3, 8), r.base + 24);
}

class TracerTest : public ::testing::Test
{
  protected:
    TracerTest()
    {
        app = layout.addFunction("kernel", CodeLayer::Application, 256);
        fw = layout.addFunction("framework", CodeLayer::Framework,
                                16 * 1024);
    }

    CodeLayout layout;
    RecordingSink sink;
    FunctionId app;
    FunctionId fw;
};

TEST_F(TracerTest, PcsStayInsideActiveFunction)
{
    Tracer t(layout, sink);
    t.call(app);
    t.intAlu(IntPurpose::Compute, 100);
    t.ret();
    const auto &fn = layout.function(app);
    // All but the final Return op must lie inside the app range.
    for (size_t i = 0; i + 1 < sink.ops.size(); ++i) {
        EXPECT_GE(sink.ops[i].pc, fn.base);
        EXPECT_LT(sink.ops[i].pc, fn.base + fn.bytes);
    }
}

TEST_F(TracerTest, StablePcForStaticSite)
{
    Tracer t(layout, sink);
    t.call(app);
    // A loop body with a fixed op count must produce the identical pc
    // sequence on every iteration: that is what lets the branch
    // predictor and BTB learn static sites.
    t.flush();
    sink.ops.clear();
    t.loop(4, [&](uint64_t) { t.intAlu(IntPurpose::Compute, 3); });
    t.ret();
    // Each iteration: 3 IntAlu + 1 BranchCond = 4 ops.
    ASSERT_EQ(sink.ops.size(), 4u * 4u + 1u);  // + final Return
    for (size_t iter = 1; iter < 4; ++iter)
        for (size_t k = 0; k < 4; ++k)
            EXPECT_EQ(sink.ops[iter * 4 + k].pc, sink.ops[k].pc)
                << "iter " << iter << " op " << k;
}

TEST_F(TracerTest, CallEmitsCallAndReturnOps)
{
    Tracer t(layout, sink);
    t.call(app);
    {
        Tracer::Scope s(t, fw);
        t.intAlu();
    }
    t.ret();
    size_t calls = 0, rets = 0;
    for (const auto &op : sink.ops) {
        calls += op.kind == OpKind::Call;
        rets += op.kind == OpKind::Return;
    }
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(rets, 2u);
}

TEST_F(TracerTest, ReturnTargetsFollowCallSite)
{
    Tracer t(layout, sink);
    t.call(app);
    t.intAlu();
    t.call(fw);
    t.ret();  // from fw
    t.flush();
    // Find the call and the matching return.
    const MicroOp *call = nullptr, *ret = nullptr;
    for (const auto &op : sink.ops) {
        if (op.kind == OpKind::Call)
            call = &op;
        if (op.kind == OpKind::Return && !ret && call)
            ret = &op;
    }
    ASSERT_NE(call, nullptr);
    ASSERT_NE(ret, nullptr);
    EXPECT_EQ(ret->target, call->pc + call->size);
    t.ret();
}

TEST_F(TracerTest, LoopEmitsNMinusOneTakenBranches)
{
    Tracer t(layout, sink);
    t.call(app);
    t.loop(5, [&](uint64_t) { t.intAlu(); });
    t.ret();
    size_t taken = 0, not_taken = 0;
    for (const auto &op : sink.ops) {
        if (op.kind == OpKind::BranchCond) {
            if (op.taken)
                ++taken;
            else
                ++not_taken;
        }
    }
    EXPECT_EQ(taken, 4u);
    EXPECT_EQ(not_taken, 1u);
}

TEST_F(TracerTest, LoopBackBranchHasStablePc)
{
    Tracer t(layout, sink);
    t.call(app);
    // Data-dependent body: iteration i emits i extra ops; the back
    // branch pc must still be stable from the second iteration on.
    t.loop(6, [&](uint64_t i) {
        t.intAlu(IntPurpose::Compute, static_cast<uint32_t>(1 + i % 3));
    });
    t.ret();
    std::vector<uint64_t> branch_pcs;
    for (const auto &op : sink.ops)
        if (op.kind == OpKind::BranchCond)
            branch_pcs.push_back(op.pc);
    ASSERT_EQ(branch_pcs.size(), 6u);
    for (size_t i = 1; i < branch_pcs.size(); ++i)
        EXPECT_EQ(branch_pcs[i], branch_pcs[0]);
}

TEST_F(TracerTest, ZeroIterationLoopEmitsGuard)
{
    Tracer t(layout, sink);
    t.call(app);
    t.loop(0, [&](uint64_t) { t.intAlu(); });
    t.ret();
    size_t branches = 0;
    for (const auto &op : sink.ops)
        branches += op.kind == OpKind::BranchCond;
    EXPECT_EQ(branches, 1u);
}

TEST_F(TracerTest, OverheadWalkEmitsConfiguredOps)
{
    CallProfile p;
    p.overheadOps = 200;
    p.rotationBytes = 512;
    fw = layout.addFunction("framework2", CodeLayer::Framework, 16 * 1024,
                            p);
    Tracer t(layout, sink);
    t.call(app);
    size_t before = sink.ops.size();
    t.call(fw);
    t.ret();
    t.ret();
    // call op + 200 overhead + return + final return.
    EXPECT_GE(sink.ops.size() - before, 202u);
}

TEST_F(TracerTest, RotationSpreadsFootprint)
{
    CallProfile p;
    p.overheadOps = 64;
    p.rotationBytes = 4096;
    fw = layout.addFunction("framework3", CodeLayer::Framework, 16 * 1024,
                            p);
    Tracer t(layout, sink);
    t.call(app);
    std::set<uint64_t> lines;
    for (int i = 0; i < 4; ++i) {
        t.call(fw);
        t.ret();
    }
    t.flush();
    for (const auto &op : sink.ops)
        lines.insert(op.pc >> 6);
    // Four rotated calls must touch clearly more unique lines than one
    // call's straight-line walk would.
    EXPECT_GT(lines.size(), 4u * 64u * 4u / 64u / 2u);
    t.ret();
}

TEST_F(TracerTest, MemOpsCarryAddresses)
{
    Tracer t(layout, sink);
    t.call(app);
    t.load(0x1000, 8);
    t.store(0x2000, 4);
    t.ret();
    const MicroOp *ld = nullptr, *st = nullptr;
    for (const auto &op : sink.ops) {
        if (op.kind == OpKind::Load)
            ld = &op;
        if (op.kind == OpKind::Store)
            st = &op;
    }
    ASSERT_NE(ld, nullptr);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(ld->memAddr, 0x1000u);
    EXPECT_EQ(ld->memSize, 8u);
    EXPECT_EQ(st->memAddr, 0x2000u);
    EXPECT_EQ(st->memSize, 4u);
}

TEST_F(TracerTest, DepthTracksCallStack)
{
    Tracer t(layout, sink);
    EXPECT_EQ(t.depth(), 0u);
    t.call(app);
    EXPECT_EQ(t.depth(), 1u);
    t.call(fw);
    EXPECT_EQ(t.depth(), 2u);
    t.ret();
    t.ret();
    EXPECT_EQ(t.depth(), 0u);
}

TEST(MixCounter, RatiosSumToOne)
{
    CodeLayout layout;
    auto f = layout.addFunction("f", CodeLayer::Application, 1024);
    MixCounter mix;
    Tracer t(layout, mix);
    t.call(f);
    t.loop(100, [&](uint64_t i) {
        t.intAlu(IntPurpose::IntAddress, 2);
        t.load(0x1000 + i * 8);
        t.store(0x9000 + i * 8);
        t.fpAlu();
        t.other();
    });
    t.ret();
    double sum = mix.branchRatio() + mix.loadRatio() + mix.storeRatio() +
                 mix.integerRatio() + mix.fpRatio() + mix.otherRatio();
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MixCounter, PurposeBreakdownSumsToOne)
{
    CodeLayout layout;
    auto f = layout.addFunction("f", CodeLayer::Application, 1024);
    MixCounter mix;
    Tracer t(layout, mix);
    t.call(f);
    t.intAlu(IntPurpose::IntAddress, 10);
    t.intAlu(IntPurpose::FpAddress, 5);
    t.intAlu(IntPurpose::Compute, 5);
    t.ret();
    EXPECT_NEAR(mix.intAddressShare(), 0.5, 1e-12);
    EXPECT_NEAR(mix.fpAddressShare(), 0.25, 1e-12);
    EXPECT_NEAR(mix.otherIntShare(), 0.25, 1e-12);
}

TEST(MixCounter, DataMovementIncludesAddressArithmetic)
{
    CodeLayout layout;
    auto f = layout.addFunction("f", CodeLayer::Application, 1024);
    MixCounter mix;
    Tracer t(layout, mix);
    t.call(f);
    t.intAlu(IntPurpose::IntAddress, 4);
    t.load(0x100);
    t.store(0x200);
    t.fpAlu(4);
    t.ret();
    // 4 addr + 1 load + 1 store of 11 total (call+ret included).
    EXPECT_NEAR(mix.dataMovementRatio(), 6.0 / 11.0, 1e-12);
}

TEST(Idioms, CompareBytesTouchesBothOperands)
{
    CodeLayout layout;
    auto f = layout.addFunction("f", CodeLayer::Application, 1024);
    RecordingSink sink;
    Tracer t(layout, sink);
    t.call(f);
    idioms::compareBytes(t, 0x1000, 0x2000, 8);
    t.ret();
    // Word-at-a-time compare: 8 compared bytes = 2 word probes per
    // operand.
    size_t a_loads = 0, b_loads = 0;
    for (const auto &op : sink.ops) {
        if (op.kind != OpKind::Load)
            continue;
        a_loads += op.memAddr >= 0x1000 && op.memAddr < 0x1010;
        b_loads += op.memAddr >= 0x2000 && op.memAddr < 0x2010;
    }
    EXPECT_EQ(a_loads, 2u);
    EXPECT_EQ(b_loads, 2u);
}

TEST(Idioms, CopyBytesMovesWholeRange)
{
    CodeLayout layout;
    auto f = layout.addFunction("f", CodeLayer::Application, 1024);
    RecordingSink sink;
    Tracer t(layout, sink);
    t.call(f);
    idioms::copyBytes(t, 0x1000, 0x2000, 64);
    t.ret();
    size_t loads = 0, stores = 0;
    for (const auto &op : sink.ops) {
        loads += op.kind == OpKind::Load;
        stores += op.kind == OpKind::Store;
    }
    EXPECT_EQ(loads, 8u);
    EXPECT_EQ(stores, 8u);
}

TEST(Idioms, FpAccumulateEmitsFpOps)
{
    CodeLayout layout;
    auto f = layout.addFunction("f", CodeLayer::Application, 1024);
    MixCounter mix;
    Tracer t(layout, mix);
    t.call(f);
    idioms::fpAccumulate(t, 0x1000, 16);
    t.ret();
    EXPECT_EQ(mix.count(OpKind::FpMul), 16u);
    EXPECT_EQ(mix.count(OpKind::FpAlu), 16u);
    EXPECT_EQ(mix.count(OpKind::Load), 16u);
}

TEST(TeeSink, FansOutToAllSinks)
{
    MixCounter a, b;
    TeeSink tee;
    tee.addSink(&a);
    tee.addSink(&b);
    MicroOp op;
    op.kind = OpKind::Load;
    op.memSize = 8;
    tee.consume(op);
    EXPECT_EQ(a.total(), 1u);
    EXPECT_EQ(b.total(), 1u);
}

TEST(TeeSink, ForwardsWholeBatches)
{
    MixCounter a, b;
    TeeSink tee;
    tee.addSink(&a);
    tee.addSink(&b);
    std::vector<MicroOp> ops(5);
    for (auto &op : ops)
        op.kind = OpKind::IntAlu;
    tee.consumeOps(ops.data(), ops.size());
    EXPECT_EQ(a.total(), 5u);
    EXPECT_EQ(b.total(), 5u);
}

TEST(OpBlock, FillsClearsAndViews)
{
    OpBlock block(4);
    EXPECT_TRUE(block.empty());
    EXPECT_EQ(block.capacity(), 4u);
    MicroOp op;
    op.kind = OpKind::Store;
    op.memAddr = 0x1000;
    op.memSize = 8;
    while (!block.full())
        block.push(op);
    EXPECT_EQ(block.size(), 4u);
    OpBlockView view = block.view();
    EXPECT_EQ(view.size(), 4u);
    EXPECT_EQ(view.kinds[1], OpKind::Store);
    EXPECT_EQ(view.memAddrs[3], 0x1000u);
    EXPECT_EQ(block[2].kind, OpKind::Store);
    EXPECT_EQ(block[2].memSize, 8u);
    size_t seen = 0;
    for (size_t i = 0; i < view.size(); ++i)
        seen += view[i].kind == OpKind::Store;
    EXPECT_EQ(seen, 4u);
    OpBlockView tail = view.slice(2, 2);
    EXPECT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail[0].memAddr, 0x1000u);
    block.clear();
    EXPECT_TRUE(block.empty());
    EXPECT_EQ(block.capacity(), 4u);
}

TEST(Tracer, FlushDeliversBufferedOpsAndDestructorDrains)
{
    CodeLayout layout;
    auto f = layout.addFunction("f", CodeLayer::Application, 1024);
    RecordingSink sink;
    {
        Tracer t(layout, sink);
        t.call(f);
        t.intAlu(IntPurpose::Compute, 3);
        // Ops are block-buffered: nothing reaches the sink until a
        // flush point.
        EXPECT_TRUE(sink.ops.empty());
        t.flush();
        EXPECT_EQ(sink.ops.size(), 3u);  // root call emits no op
        t.intAlu();
        // Destructor drains whatever is still buffered.
    }
    EXPECT_EQ(sink.ops.size(), 4u);
}

// A sink that wedges (throws on every delivery) after accepting a
// fixed number of batches — the shape of a shm ring whose analyzer
// died or never attached.
class WedgedSink : public TraceSink
{
  public:
    explicit WedgedSink(size_t accept) : accept(accept) {}

    void consume(const MicroOp &) override {}

    void
    consumeBatch(const OpBlockView &ops) override
    {
        if (delivered >= accept)
            throw std::runtime_error("sink wedged");
        delivered += ops.count;
    }

    size_t accept;
    size_t delivered = 0;
};

// Once the sink throws out of a delivery, the tracer's stream is dead:
// emission must stay memory-safe (the failed block is discarded, not
// left full so the next emit writes past the fixed-capacity arrays)
// and later deliveries must not throw a second time — ops keep
// arriving while the original exception unwinds Scope destructors.
TEST(Tracer, EmissionSurvivesSinkFailureMidStream)
{
    CodeLayout layout;
    auto f = layout.addFunction("f", CodeLayer::Application, 1024);
    WedgedSink sink(0);
    Tracer t(layout, sink);
    t.call(f);

    bool threw = false;
    try {
        {
            Tracer::Scope scope(t, f);
            // Fill well past one block so the auto-flush hits the
            // wedged sink mid-emission, inside the scope.
            t.intAlu(IntPurpose::Compute, 2 * defaultOpBlockOps);
        }
    } catch (const std::runtime_error &) {
        threw = true;
    }
    EXPECT_TRUE(threw);

    // Emission after the failure (what unwinding does) must neither
    // crash nor throw, across enough ops to refill whole blocks.
    for (size_t i = 0; i < 2 * defaultOpBlockOps; ++i)
        EXPECT_NO_THROW(t.intAlu());
    EXPECT_NO_THROW(t.ret());
    EXPECT_EQ(sink.delivered, 0u);
}

} // namespace
} // namespace wcrt
