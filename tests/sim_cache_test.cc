/**
 * @file
 * Unit tests for the cache and TLB models: hit/miss semantics, LRU
 * replacement, geometry validation and capacity behaviour.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "sim/cache.hh"
#include "sim/tlb.hh"

namespace wcrt {
namespace {

CacheConfig
smallCache(uint64_t size = 1024, uint32_t assoc = 2, uint32_t line = 64)
{
    return {"test", size, assoc, line};
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x103F));  // same line
    EXPECT_FALSE(c.access(0x1040)); // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsLeastRecent)
{
    // 2-way, 64B lines, 1KB => 8 sets. Three lines mapping to set 0:
    // line addresses differing by 8*64 = 512 bytes.
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x0));
    EXPECT_FALSE(c.access(0x200));
    EXPECT_TRUE(c.access(0x0));     // refresh line 0
    EXPECT_FALSE(c.access(0x400));  // evicts 0x200 (LRU)
    EXPECT_TRUE(c.access(0x0));
    EXPECT_FALSE(c.access(0x200));  // was evicted
}

TEST(Cache, FullyAssociativeKeepsWorkingSet)
{
    CacheConfig cfg{"fa", 512, 8, 64};  // one set of 8 ways
    Cache c(cfg);
    for (uint64_t i = 0; i < 8; ++i)
        EXPECT_FALSE(c.access(i * 64));
    for (uint64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(c.access(i * 64));
    EXPECT_FALSE(c.access(8 * 64));
}

TEST(Cache, AccessRangeCountsSpannedLines)
{
    Cache c(smallCache(4096, 4));
    // 100 bytes starting 10 bytes before a line boundary spans 3 lines.
    EXPECT_EQ(c.accessRange(64 - 10, 100, false), 3u);
    EXPECT_EQ(c.accessRange(64 - 10, 100, false), 0u);
}

TEST(Cache, InvalidateDropsContentsKeepsStats)
{
    Cache c(smallCache());
    c.access(0x0);
    c.invalidate();
    EXPECT_FALSE(c.access(0x0));
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, ResetStatsKeepsContents)
{
    Cache c(smallCache());
    c.access(0x0);
    c.resetStats();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_TRUE(c.access(0x0));
}

TEST(Cache, MissRatioDropsWhenWorkingSetFits)
{
    // Working set of 16KB streamed repeatedly: a 32KB cache should
    // converge to ~0 misses; an 8KB cache should keep missing.
    auto run = [](uint64_t cache_size) {
        Cache c({"c", cache_size, 8, 64});
        for (int pass = 0; pass < 64; ++pass)
            for (uint64_t addr = 0; addr < 16 * 1024; addr += 64)
                c.access(addr);
        return c.missRatio();
    };
    EXPECT_LT(run(32 * 1024), 0.05);  // only cold misses remain
    EXPECT_GT(run(8 * 1024), 0.9);  // LRU streaming pathology
}

TEST(Cache, LargerCacheNeverWorseOnRandomTrace)
{
    Rng rng(99);
    std::vector<uint64_t> trace;
    for (int i = 0; i < 20000; ++i)
        trace.push_back(rng.nextBelow(1 << 20) & ~63ull);
    double prev = 1.1;
    for (uint64_t kb : {4, 16, 64, 256, 1024}) {
        Cache c({"c", kb * 1024, 8, 64});
        for (auto a : trace)
            c.access(a);
        EXPECT_LE(c.missRatio(), prev + 0.02) << kb << "KB";
        prev = c.missRatio();
    }
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_DEATH(
        { Cache c({"bad", 1000, 3, 60}); }, "power of two|divisible");
}

TEST(Tlb, PageGranularity)
{
    Tlb tlb({"tlb", 4, 4, 4096});
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1FFF));   // same page
    EXPECT_FALSE(tlb.access(0x2000));  // next page
}

TEST(Tlb, CapacityEviction)
{
    Tlb tlb({"tlb", 4, 4, 4096});  // 4 entries fully associative
    for (uint64_t p = 0; p < 5; ++p)
        tlb.access(p * 4096);
    // Page 0 was LRU and must have been evicted by page 4.
    EXPECT_FALSE(tlb.access(0));
    EXPECT_EQ(tlb.misses(), 6u);
}

TEST(Tlb, HitsWithinWorkingSet)
{
    Tlb tlb({"tlb", 64, 4, 4096});
    for (int pass = 0; pass < 4; ++pass)
        for (uint64_t p = 0; p < 32; ++p)
            tlb.access(p * 4096 + pass);
    EXPECT_EQ(tlb.misses(), 32u);
}

} // namespace
} // namespace wcrt
