/**
 * @file
 * Unit tests for the branch unit: direction prediction learning, loop
 * prediction, BTB capacity, indirect prediction, RAS behaviour and the
 * D510-vs-E5645 configuration contrast the paper's Table 4 describes.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "sim/branch.hh"

namespace wcrt {
namespace {

MicroOp
condBranch(uint64_t pc, bool taken, uint64_t target = 0x9000)
{
    MicroOp op;
    op.kind = OpKind::BranchCond;
    op.pc = pc;
    op.taken = taken;
    op.target = taken ? target : 0;
    return op;
}

TEST(BranchUnit, LearnsAlwaysTakenBranch)
{
    BranchUnit bu(xeonE5645Branch());
    for (int i = 0; i < 1000; ++i)
        bu.predict(condBranch(0x4000, true));
    // After warmup (history fill + counter training) the branch must
    // be predicted nearly perfectly.
    EXPECT_LT(bu.stats().mispredictRatio(), 0.03);
}

TEST(BranchUnit, LearnsAlternatingPattern)
{
    BranchUnit bu(xeonE5645Branch());
    for (int i = 0; i < 2000; ++i)
        bu.predict(condBranch(0x4000, i % 2 == 0));
    // A global-history predictor learns period-2 patterns.
    EXPECT_LT(bu.stats().mispredictRatio(), 0.05);
}

TEST(BranchUnit, RandomBranchesMispredictHeavily)
{
    BranchUnit bu(xeonE5645Branch());
    Rng rng(3);
    for (int i = 0; i < 5000; ++i)
        bu.predict(condBranch(0x4000, rng.nextBool(0.5)));
    EXPECT_GT(bu.stats().mispredictRatio(), 0.3);
}

TEST(BranchUnit, LoopPredictorBeatsPlainGshareOnFixedTrips)
{
    // A loop with a fixed trip count of 37: the E5645's loop predictor
    // should learn the exit; the D510 two-level predictor mispredicts
    // the exit every pass once history is shorter than the trip.
    auto run = [](const BranchConfig &cfg) {
        BranchUnit bu(cfg);
        for (int pass = 0; pass < 400; ++pass) {
            for (int i = 0; i < 37; ++i)
                bu.predict(condBranch(0x4000, i < 36, 0x4000));
        }
        return bu.stats().mispredictRatio();
    };
    double e5645 = run(xeonE5645Branch());
    double d510 = run(atomD510Branch());
    EXPECT_LT(e5645, d510);
}

TEST(BranchUnit, BtbCapacityPressureHurtsSmallBtb)
{
    // 1024 distinct always-taken branches overflow a 128-entry BTB but
    // fit in 8192 entries. BTB misses are decode resteers (counted
    // separately from direction mispredicts).
    auto run = [](const BranchConfig &cfg) {
        BranchUnit bu(cfg);
        for (int pass = 0; pass < 30; ++pass)
            for (uint64_t b = 0; b < 1024; ++b)
                bu.predict(
                    condBranch(0x4000 + b * 16, true, 0x9000 + b * 16));
        return bu.stats();
    };
    BranchStats big = run(xeonE5645Branch());
    BranchStats small = run(atomD510Branch());
    // The large BTB holds the working set after the cold pass; the
    // 128-entry BTB thrashes on every access.
    EXPECT_LT(big.btbMisses, 2048u);
    EXPECT_GT(small.btbMisses, 25000u);
    // Directions are all-taken and predictable on the OoO config; the
    // in-order D510 pays a full refetch for every BTB miss, which is
    // exactly the Table-4 disadvantage.
    EXPECT_LT(big.mispredictRatio(), 0.05);
    EXPECT_GT(small.mispredictRatio(), 0.5);
}

TEST(BranchUnit, IndirectPredictorLearnsPerHistoryTargets)
{
    // An indirect jump alternating between two targets in a fixed
    // pattern: with history-based indirect prediction this converges;
    // with BTB-last-target it mispredicts every switch.
    auto run = [](const BranchConfig &cfg) {
        BranchUnit bu(cfg);
        for (int i = 0; i < 4000; ++i) {
            MicroOp op;
            op.kind = OpKind::BranchIndirect;
            op.pc = 0x5000;
            op.taken = true;
            op.target = (i % 2) ? 0x8000 : 0x8800;
            bu.predict(op);
        }
        const auto &st = bu.stats();
        return static_cast<double>(st.indirectMispredicts) /
               static_cast<double>(st.indirect);
    };
    double with_pred = run(xeonE5645Branch());
    double without = run(atomD510Branch());
    EXPECT_LT(with_pred, 0.2);
    EXPECT_GT(without, 0.9);
}

TEST(BranchUnit, RasPredictsNestedReturns)
{
    BranchUnit bu(xeonE5645Branch());
    // Simulate call/return nesting depth 8, many times.
    for (int rep = 0; rep < 100; ++rep) {
        std::vector<uint64_t> sites;
        for (uint64_t d = 0; d < 8; ++d) {
            MicroOp call;
            call.kind = OpKind::Call;
            call.pc = 0x4000 + d * 64;
            call.size = 4;
            call.target = 0x10000 + d * 1024;
            call.taken = true;
            bu.predict(call);
            sites.push_back(call.pc + call.size);
        }
        for (int d = 7; d >= 0; --d) {
            MicroOp ret;
            ret.kind = OpKind::Return;
            ret.pc = 0x20000;
            ret.target = sites[static_cast<size_t>(d)];
            ret.taken = true;
            bu.predict(ret);
        }
    }
    EXPECT_EQ(bu.stats().returnMispredicts, 0u);
}

TEST(BranchUnit, RasOverflowMispredictsDeepReturns)
{
    BranchConfig cfg = atomD510Branch();  // 8-entry RAS
    BranchUnit bu(cfg);
    std::vector<uint64_t> sites;
    for (uint64_t d = 0; d < 16; ++d) {
        MicroOp call;
        call.kind = OpKind::Call;
        call.pc = 0x4000 + d * 64;
        call.size = 4;
        call.target = 0x10000;
        bu.predict(call);
        sites.push_back(call.pc + 4);
    }
    uint64_t wrong = 0;
    for (int d = 15; d >= 0; --d) {
        MicroOp ret;
        ret.kind = OpKind::Return;
        ret.pc = 0x20000;
        ret.target = sites[static_cast<size_t>(d)];
        bu.predict(ret);
    }
    wrong = bu.stats().returnMispredicts;
    // The 8 overwritten frames must mispredict.
    EXPECT_GE(wrong, 8u);
    EXPECT_LE(wrong, 16u);
}

TEST(BranchUnit, StatsTotalsAreConsistent)
{
    BranchUnit bu(xeonE5645Branch());
    Rng rng(17);
    for (int i = 0; i < 1000; ++i)
        bu.predict(condBranch(0x4000 + (i % 7) * 16, rng.nextBool(0.7)));
    const auto &st = bu.stats();
    EXPECT_EQ(st.conditional, 1000u);
    EXPECT_LE(st.mispredicts(), st.total());
    EXPECT_GE(st.mispredictRatio(), 0.0);
    EXPECT_LE(st.mispredictRatio(), 1.0);
}

TEST(BranchUnit, NonControlOpsAreIgnored)
{
    BranchUnit bu(xeonE5645Branch());
    MicroOp op;
    op.kind = OpKind::Load;
    EXPECT_TRUE(bu.predict(op));
    EXPECT_EQ(bu.stats().total(), 0u);
}

TEST(BranchConfigs, MatchTable4)
{
    BranchConfig d510 = atomD510Branch();
    BranchConfig e5645 = xeonE5645Branch();
    EXPECT_EQ(d510.btbEntries, 128u);
    EXPECT_EQ(e5645.btbEntries, 8192u);
    EXPECT_FALSE(d510.hasLoopPredictor);
    EXPECT_TRUE(e5645.hasLoopPredictor);
    EXPECT_FALSE(d510.hasIndirectPredictor);
    EXPECT_TRUE(e5645.hasIndirectPredictor);
    EXPECT_EQ(d510.mispredictPenalty, 15.0);
    EXPECT_GE(e5645.mispredictPenalty, 11.0);
    EXPECT_LE(e5645.mispredictPenalty, 13.0);
}

} // namespace
} // namespace wcrt
