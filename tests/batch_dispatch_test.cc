/**
 * @file
 * Equivalence tests for the batched micro-op transport: every sink
 * must produce bit-identical state whether the same stream arrives op
 * by op through consume() or partitioned into consumeBatch() blocks
 * of any size — including blocks of one, awkward primes and a ragged
 * final block. This is the TraceSink compatibility contract that lets
 * emitters and the trace reader switch to block transport without
 * perturbing any measurement.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "base/rng.hh"
#include "core/metrics.hh"
#include "sim/corun.hh"
#include "sim/footprint.hh"
#include "sim/inorder_core.hh"
#include "sim/sim_cpu.hh"
#include "trace/mix_counter.hh"
#include "trace/sampling.hh"
#include "tracefile/trace_writer.hh"

namespace wcrt {
namespace {

namespace fs = std::filesystem;

/** Block sizes covering the interesting partitions of one stream. */
const size_t kBlockSizes[] = {1, 7, 4096};

/** Stream length chosen so every tested block size ends ragged. */
constexpr size_t kStreamOps = 10000;

/**
 * A SimCpu-shaped synthetic stream: loads, stores, branches, calls,
 * FP work and address arithmetic over a few MB of data.
 */
std::vector<MicroOp>
syntheticStream(size_t count)
{
    Rng rng(23);
    std::vector<MicroOp> ops(count);
    for (size_t i = 0; i < ops.size(); ++i) {
        MicroOp &op = ops[i];
        op.pc = 0x400000 + (i % 4093) * 4;
        uint64_t pick = rng.nextBelow(100);
        if (pick < 25) {
            op.kind = OpKind::Load;
            op.memAddr = rng.nextBelow(1 << 22);
            op.memSize = 8;
        } else if (pick < 35) {
            op.kind = OpKind::Store;
            op.memAddr = rng.nextBelow(1 << 22);
            op.memSize = 8;
        } else if (pick < 50) {
            op.kind = OpKind::BranchCond;
            op.taken = rng.nextBool(0.4);
            op.target = 0x400000 + rng.nextBelow(16384);
        } else if (pick < 53) {
            op.kind = OpKind::Call;
            op.target = 0x500000 + rng.nextBelow(4096);
            op.taken = true;
        } else if (pick < 56) {
            op.kind = OpKind::Return;
            op.target = 0x400000 + rng.nextBelow(16384);
            op.taken = true;
        } else if (pick < 64) {
            op.kind = pick < 60 ? OpKind::FpMul : OpKind::FpAlu;
        } else {
            op.kind = OpKind::IntAlu;
            op.purpose = pick < 80   ? IntPurpose::IntAddress
                         : pick < 88 ? IntPurpose::FpAddress
                                     : IntPurpose::Compute;
        }
    }
    return ops;
}

/**
 * A streaming-locality stream: sequential code, two strided data
 * streams that confirm the hardware prefetcher, plus occasional
 * random pointer-chase accesses. This is the adversarial input for
 * SimCpu's batch-path repeat filters and prefetch-burst memos —
 * alternating loads and stores re-access lines in the A,B,A,B
 * pattern, streams advance across cache-set boundaries, and the
 * random accesses land in memoised sets at arbitrary points.
 */
std::vector<MicroOp>
streamingStream(size_t count)
{
    Rng rng(31);
    std::vector<MicroOp> ops(count);
    uint64_t read_cursor = 0;
    uint64_t write_cursor = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
        MicroOp &op = ops[i];
        op.pc = 0x400000 + (i % 4096) * 4;
        uint64_t pick = rng.nextBelow(100);
        if (pick < 25) {
            op.kind = OpKind::Load;
            op.memAddr = 0x10000000 + (read_cursor % (128 * 1024));
            read_cursor += 8;
            op.memSize = 8;
        } else if (pick < 30) {
            op.kind = OpKind::Load;
            op.memAddr = 0x30000000 + rng.nextBelow(1 << 22);
            op.memSize = 8;
        } else if (pick < 40) {
            op.kind = OpKind::Store;
            op.memAddr = 0x20000000 + (write_cursor % (128 * 1024));
            write_cursor += 8;
            op.memSize = 8;
        } else if (pick < 55) {
            op.kind = OpKind::BranchCond;
            op.taken = rng.nextBool(0.3);
            op.target = 0x400000 + rng.nextBelow(16384);
        } else {
            op.kind = OpKind::IntAlu;
            op.purpose = pick < 80 ? IntPurpose::IntAddress
                                   : IntPurpose::Compute;
        }
    }
    return ops;
}

/**
 * Feed `ops` to `sink` in consumeBatch blocks of `block` ops, packed
 * through a reused SoA OpBlock exactly as the emitters deliver them.
 */
void
feedBlocked(TraceSink &sink, const std::vector<MicroOp> &ops, size_t block)
{
    OpBlock buf(block);
    for (size_t i = 0; i < ops.size(); i += block) {
        size_t n = std::min(block, ops.size() - i);
        buf.clear();
        for (size_t j = 0; j < n; ++j)
            buf.push(ops[i + j]);
        sink.consumeBlock(buf);
    }
}

void
feedPerOp(TraceSink &sink, const std::vector<MicroOp> &ops)
{
    for (const auto &op : ops)
        sink.consume(op);
}

void
expectOpsEqual(const std::vector<MicroOp> &a,
               const std::vector<MicroOp> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("op " + std::to_string(i));
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].purpose, b[i].purpose);
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].memAddr, b[i].memAddr);
        EXPECT_EQ(a[i].memSize, b[i].memSize);
        EXPECT_EQ(a[i].target, b[i].target);
        EXPECT_EQ(a[i].taken, b[i].taken);
    }
}

TEST(BatchDispatch, MixCounterMatchesPerOp)
{
    auto ops = syntheticStream(kStreamOps);
    MixCounter per_op;
    feedPerOp(per_op, ops);
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        MixCounter batched;
        feedBlocked(batched, ops, block);
        EXPECT_EQ(batched.total(), per_op.total());
        for (size_t k = 0; k < numOpKinds; ++k)
            EXPECT_EQ(batched.count(static_cast<OpKind>(k)),
                      per_op.count(static_cast<OpKind>(k)))
                << "kind " << k;
        EXPECT_EQ(batched.intAddressShare(), per_op.intAddressShare());
        EXPECT_EQ(batched.fpAddressShare(), per_op.fpAddressShare());
        EXPECT_EQ(batched.otherIntShare(), per_op.otherIntShare());
        EXPECT_EQ(batched.dataMovementRatio(),
                  per_op.dataMovementRatio());
    }
}

TEST(BatchDispatch, SimCpuReportBitIdentical)
{
    auto ops = syntheticStream(kStreamOps);
    SimCpu per_op(xeonE5645());
    feedPerOp(per_op, ops);
    MetricVector base = toMetricVector(per_op.report());
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        SimCpu batched(xeonE5645());
        feedBlocked(batched, ops, block);
        CpuReport report = batched.report();
        EXPECT_EQ(report.instructions, per_op.report().instructions);
        EXPECT_EQ(report.cycles, per_op.report().cycles);
        MetricVector got = toMetricVector(report);
        for (size_t m = 0; m < numMetrics; ++m)
            EXPECT_EQ(got[m], base[m])
                << "metric " << metricInfos()[m].name;
    }
}

TEST(BatchDispatch, SimCpuBitIdenticalOnStreamingPattern)
{
    auto ops = streamingStream(kStreamOps);
    SimCpu per_op(xeonE5645());
    feedPerOp(per_op, ops);
    MetricVector base = toMetricVector(per_op.report());
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        SimCpu batched(xeonE5645());
        feedBlocked(batched, ops, block);
        MetricVector got = toMetricVector(batched.report());
        for (size_t m = 0; m < numMetrics; ++m)
            EXPECT_EQ(got[m], base[m])
                << "metric " << metricInfos()[m].name;
    }
}

TEST(BatchDispatch, FootprintSweepCurvesMatch)
{
    auto ops = syntheticStream(kStreamOps);
    std::vector<uint32_t> sizes{16, 64, 256, 1024};
    FootprintSweep per_op(sizes);
    feedPerOp(per_op, ops);
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        FootprintSweep batched(sizes);
        feedBlocked(batched, ops, block);
        EXPECT_EQ(batched.instructions(), per_op.instructions());
        for (auto kind : {SweepKind::Instruction, SweepKind::Data,
                          SweepKind::Unified}) {
            auto base = per_op.missRatios(kind);
            auto got = batched.missRatios(kind);
            for (size_t i = 0; i < sizes.size(); ++i)
                EXPECT_EQ(got[i], base[i]) << sizes[i] << " KB";
        }
    }
}

TEST(BatchDispatch, InOrderCoreReportMatches)
{
    auto ops = syntheticStream(kStreamOps);
    InOrderCore per_op(atomInOrderSim(32));
    feedPerOp(per_op, ops);
    InOrderReport base = per_op.report();
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        InOrderCore batched(atomInOrderSim(32));
        feedBlocked(batched, ops, block);
        InOrderReport got = batched.report();
        EXPECT_EQ(got.instructions, base.instructions);
        EXPECT_EQ(got.cycles, base.cycles);
        EXPECT_EQ(got.ipc, base.ipc);
        EXPECT_EQ(got.loadUseStallCycles, base.loadUseStallCycles);
        EXPECT_EQ(got.frontendStallCycles, base.frontendStallCycles);
        EXPECT_EQ(got.memoryStallCycles, base.memoryStallCycles);
        EXPECT_EQ(got.executeCycles, base.executeCycles);
    }
}

TEST(BatchDispatch, SamplingSinkForwardsIdenticalOps)
{
    auto ops = syntheticStream(kStreamOps);
    TraceRecorder per_op_rec;
    SamplingSink per_op(per_op_rec, ops.size());
    feedPerOp(per_op, ops);
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        TraceRecorder rec;
        SamplingSink batched(rec, ops.size());
        feedBlocked(batched, ops, block);
        EXPECT_EQ(batched.totalOps(), per_op.totalOps());
        EXPECT_EQ(batched.sampledOps(), per_op.sampledOps());
        expectOpsEqual(rec.trace(), per_op_rec.trace());
    }
}

TEST(BatchDispatch, CountingSinkAndRecorderMatch)
{
    auto ops = syntheticStream(kStreamOps);
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        CountingSink counter;
        feedBlocked(counter, ops, block);
        EXPECT_EQ(counter.ops(), ops.size());

        TraceRecorder recorder;
        feedBlocked(recorder, ops, block);
        expectOpsEqual(recorder.trace(), ops);
    }
}

TEST(BatchDispatch, TeeSinkKeepsFanOutCountsExact)
{
    auto ops = syntheticStream(kStreamOps);
    MixCounter per_op;
    feedPerOp(per_op, ops);
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        MixCounter a;
        CountingSink b;
        TeeSink tee;
        tee.addSink(&a);
        tee.addSink(&b);
        feedBlocked(tee, ops, block);
        EXPECT_EQ(a.total(), per_op.total());
        EXPECT_EQ(b.ops(), ops.size());
    }
}

TEST(BatchDispatch, ParallelTeeSinkMatchesSequential)
{
    auto ops = syntheticStream(kStreamOps);
    MixCounter mix_ref;
    feedPerOp(mix_ref, ops);
    SimCpu cpu_ref(xeonE5645());
    feedPerOp(cpu_ref, ops);
    MetricVector cpu_base = toMetricVector(cpu_ref.report());
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        MixCounter a;
        CountingSink b;
        SimCpu c(xeonE5645());
        TraceRecorder seq_only;
        TeeSink tee(3);
        tee.addSink(&a);
        tee.addSink(&b);
        tee.addSink(&c);
        tee.addSink(&seq_only, /*concurrentSafe=*/false);
        feedBlocked(tee, ops, block);
        // The pipelined fan-out may still hold the last blocks in
        // flight; reading child state requires settling them first.
        tee.drain();
        EXPECT_EQ(a.total(), mix_ref.total());
        for (size_t k = 0; k < numOpKinds; ++k)
            EXPECT_EQ(a.count(static_cast<OpKind>(k)),
                      mix_ref.count(static_cast<OpKind>(k)))
                << "kind " << k;
        EXPECT_EQ(b.ops(), ops.size());
        MetricVector got = toMetricVector(c.report());
        for (size_t m = 0; m < numMetrics; ++m)
            EXPECT_EQ(got[m], cpu_base[m])
                << "metric " << metricInfos()[m].name;
        expectOpsEqual(seq_only.trace(), ops);
    }
}

TEST(BatchDispatch, ParallelTeeSinkSurvivesManyBlocks)
{
    // Stress the double-buffer cycle with thousands of small blocks:
    // each staging slot must fully drain before it is refilled and
    // block N must not start before N-1 completes, so any latch bug
    // shows up as a count mismatch or a TSan report.
    auto ops = syntheticStream(kStreamOps);
    CountingSink a, b, c, d;
    TeeSink tee(2);
    tee.addSink(&a);
    tee.addSink(&b);
    tee.addSink(&c);
    tee.addSink(&d, /*concurrentSafe=*/false);
    feedBlocked(tee, ops, 3);
    tee.drain();
    EXPECT_EQ(a.ops(), ops.size());
    EXPECT_EQ(b.ops(), ops.size());
    EXPECT_EQ(c.ops(), ops.size());
    EXPECT_EQ(d.ops(), ops.size());
}

TEST(BatchDispatch, DoubleBufferedTeeSinkOrdersBlocksPerChild)
{
    // A recorder observes the concatenation of every block it was
    // handed; if the double-buffered fan-out ever reordered blocks,
    // overlapped a child with itself, or handed out a stale staging
    // slot, the recorded op sequence would diverge. Two recorders and
    // a third child keep both pool slots and the latch busy.
    auto ops = syntheticStream(kStreamOps);
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        TraceRecorder a, b;
        CountingSink c;
        TeeSink tee(2);
        tee.addSink(&a);
        tee.addSink(&b);
        tee.addSink(&c);
        feedBlocked(tee, ops, block);
        tee.drain();
        expectOpsEqual(a.trace(), ops);
        expectOpsEqual(b.trace(), ops);
        EXPECT_EQ(c.ops(), ops.size());
    }
}

TEST(BatchDispatch, DrainIsIdempotentAndPerOpSettlesInFlight)
{
    // consume() on a pipelined tee must settle in-flight blocks first
    // so the per-op fan-out lands after them; drain() afterwards (and
    // repeatedly) must be harmless.
    auto ops = syntheticStream(1000);
    TraceRecorder a, b;
    TeeSink tee(2);
    tee.addSink(&a);
    tee.addSink(&b);
    feedBlocked(tee, ops, 64);
    MicroOp extra;
    extra.kind = OpKind::Other;
    extra.pc = 0xdead0000;
    tee.consume(extra);
    tee.drain();
    tee.drain();
    auto expect = ops;
    expect.push_back(extra);
    expectOpsEqual(a.trace(), expect);
    expectOpsEqual(b.trace(), expect);
}

TEST(BatchDispatch, FootprintSweepParallelMatchesScalar)
{
    // The rung-parallel batch path must stay bit-identical to both
    // the scalar batch path and the per-op reference, on the random
    // pattern and on the adversarial streaming pattern that hammers
    // the set-MRU repeat memos.
    std::vector<uint32_t> sizes{16, 64, 256, 1024};
    for (bool streaming : {false, true}) {
        SCOPED_TRACE(streaming ? "streaming" : "synthetic");
        auto ops = streaming ? streamingStream(kStreamOps)
                             : syntheticStream(kStreamOps);
        FootprintSweep per_op(sizes);
        feedPerOp(per_op, ops);
        for (size_t block : kBlockSizes) {
            SCOPED_TRACE("block " + std::to_string(block));
            FootprintSweep scalar(sizes);
            FootprintSweep parallel(sizes, 8, 64, /*workers=*/3);
            feedBlocked(scalar, ops, block);
            feedBlocked(parallel, ops, block);
            EXPECT_EQ(scalar.instructions(), per_op.instructions());
            EXPECT_EQ(parallel.instructions(), per_op.instructions());
            for (auto kind : {SweepKind::Instruction, SweepKind::Data,
                              SweepKind::Unified}) {
                auto base = per_op.missRatios(kind);
                auto scalar_got = scalar.missRatios(kind);
                auto parallel_got = parallel.missRatios(kind);
                for (size_t i = 0; i < sizes.size(); ++i) {
                    EXPECT_EQ(scalar_got[i], base[i]) << sizes[i] << " KB";
                    EXPECT_EQ(parallel_got[i], base[i])
                        << sizes[i] << " KB";
                }
            }
        }
    }
}

TEST(BatchDispatch, FootprintSweepSurvivesMixedDelivery)
{
    // Alternating batch and per-op delivery: the per-op path must
    // forget the repeat memos a preceding batch built, or the skipped
    // recency updates would corrupt later counts.
    auto ops = streamingStream(kStreamOps);
    std::vector<uint32_t> sizes{16, 128};
    FootprintSweep per_op(sizes);
    feedPerOp(per_op, ops);
    FootprintSweep mixed(sizes, 8, 64, /*workers=*/2);
    OpBlock buf(64);
    for (size_t i = 0; i < ops.size();) {
        if ((i / 64) % 3 == 2) {
            mixed.consume(ops[i]);
            ++i;
            continue;
        }
        size_t n = std::min<size_t>(64, ops.size() - i);
        buf.clear();
        for (size_t j = 0; j < n; ++j)
            buf.push(ops[i + j]);
        mixed.consumeBlock(buf);
        i += n;
    }
    EXPECT_EQ(mixed.instructions(), per_op.instructions());
    for (auto kind : {SweepKind::Instruction, SweepKind::Data,
                      SweepKind::Unified}) {
        auto base = per_op.missRatios(kind);
        auto got = mixed.missRatios(kind);
        for (size_t i = 0; i < sizes.size(); ++i)
            EXPECT_EQ(got[i], base[i]) << sizes[i] << " KB";
    }
}

TEST(SweepRungSplit, FullLadderMatchesScalarAcrossBlockSizes)
{
    // The set-range rung splitting targets the ladder's big-rung tail,
    // so exercise the full paper ladder up to the 8192 KB rung with a
    // worker cap high enough to hit the maximum split width, at block
    // sizes 1 / 7 / 4096, on both reference patterns. Every count
    // must stay bit-identical to the scalar (workers = 0) walk: the
    // shards touch disjoint set ranges, carry private recency clocks
    // and merge deterministically at the rung join.
    auto ladder = paperSweepSizesKb();
    for (bool streaming : {false, true}) {
        SCOPED_TRACE(streaming ? "streaming" : "synthetic");
        auto ops = streaming ? streamingStream(kStreamOps)
                             : syntheticStream(kStreamOps);
        for (size_t block : kBlockSizes) {
            SCOPED_TRACE("block " + std::to_string(block));
            FootprintSweep scalar(ladder);
            FootprintSweep split(ladder, 8, 64, /*workers=*/8);
            feedBlocked(scalar, ops, block);
            feedBlocked(split, ops, block);
            EXPECT_EQ(split.instructions(), scalar.instructions());
            for (auto kind : {SweepKind::Instruction, SweepKind::Data,
                              SweepKind::Unified}) {
                auto base = scalar.missRatios(kind);
                auto got = split.missRatios(kind);
                for (size_t i = 0; i < ladder.size(); ++i)
                    EXPECT_EQ(got[i], base[i]) << ladder[i] << " KB";
            }
        }
    }
}

TEST(SweepRungSplit, OddSetCountsSplitCleanly)
{
    // 48 KB and 96 KB 8-way rungs have 96 and 192 sets — not powers
    // of two, so the caches index by modulo and the set count does
    // not divide evenly by the split width. The set-range partition
    // must cover every set exactly once whatever the count, so the
    // split walk still matches the scalar one.
    std::vector<uint32_t> sizes{48, 96};
    auto ops = syntheticStream(kStreamOps);
    FootprintSweep scalar(sizes, 8, 64, 0);
    FootprintSweep split(sizes, 8, 64, /*workers=*/3);
    feedBlocked(scalar, ops, 64);
    feedBlocked(split, ops, 64);
    for (auto kind : {SweepKind::Instruction, SweepKind::Data,
                      SweepKind::Unified}) {
        auto base = scalar.missRatios(kind);
        auto got = split.missRatios(kind);
        for (size_t i = 0; i < sizes.size(); ++i)
            EXPECT_EQ(got[i], base[i]) << sizes[i] << " KB";
    }
}

TEST(BatchDispatch, SamplingWindowStraddlingBlockEdgeMatchesPerOp)
{
    // Window boundaries placed just around multiples of the block
    // sizes, so forwarding starts and stops mid-block and at exact
    // block edges; batch and per-op forwarding must agree op for op.
    auto ops = syntheticStream(kStreamOps);
    // One window straddling each tested block size's boundary,
    // expressed as fractions of kStreamOps.
    std::vector<SampleWindow> windows;
    const double n = static_cast<double>(kStreamOps);
    windows.push_back({698.0 / n, 705.0 / n});    // straddles 7-block edge
    windows.push_back({4090.0 / n, 4100.0 / n});  // straddles 4096 edge
    windows.push_back({8191.0 / n, 8193.0 / n});  // 1-block edge is any op
    TraceRecorder per_op_rec;
    SamplingSink per_op(per_op_rec, kStreamOps, windows);
    feedPerOp(per_op, ops);
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        TraceRecorder rec;
        SamplingSink batched(rec, kStreamOps, windows);
        feedBlocked(batched, ops, block);
        EXPECT_EQ(batched.totalOps(), per_op.totalOps());
        EXPECT_EQ(batched.sampledOps(), per_op.sampledOps());
        expectOpsEqual(rec.trace(), per_op_rec.trace());
    }
}

TEST(BatchDispatch, SamplingCollapsedWindowsStayDisjointAndClamped)
{
    // With a tiny expected length, adjacent windows collapse onto the
    // same integer index and the trailing window lands past the end.
    // The converted ranges must stay disjoint and clamped, and both
    // delivery paths must agree — also when the trace runs longer
    // than expected.
    constexpr uint64_t expected = 10;
    std::vector<SampleWindow> windows{
        {0.50, 0.51}, {0.52, 0.53}, {0.54, 0.55}, {0.99, 1.0}};
    auto ops = syntheticStream(25);  // longer than expected
    TraceRecorder per_op_rec;
    SamplingSink per_op(per_op_rec, expected, windows);
    feedPerOp(per_op, ops);
    // Windows 0.50/0.52/0.54 all floor to index 5: disjoint
    // conversion spreads them to ops 5, 6, 7; 0.99-1.0 claims op 9.
    EXPECT_EQ(per_op.sampledOps(), 4u);
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        TraceRecorder rec;
        SamplingSink batched(rec, expected, windows);
        feedBlocked(batched, ops, block);
        EXPECT_EQ(batched.totalOps(), per_op.totalOps());
        EXPECT_EQ(batched.sampledOps(), per_op.sampledOps());
        expectOpsEqual(rec.trace(), per_op_rec.trace());
    }
}

TEST(BatchDispatch, SamplingWindowPastEndVanishesAfterClamp)
{
    // Both windows collapse to index 9; the second is squeezed past
    // expected_ops by the disjointness shift and must vanish instead
    // of forwarding out-of-range indices when the trace runs long.
    constexpr uint64_t expected = 10;
    std::vector<SampleWindow> windows{{0.97, 0.98}, {0.99, 1.0}};
    auto ops = syntheticStream(30);
    TraceRecorder per_op_rec;
    SamplingSink per_op(per_op_rec, expected, windows);
    feedPerOp(per_op, ops);
    EXPECT_EQ(per_op.sampledOps(), 1u);
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        TraceRecorder rec;
        SamplingSink batched(rec, expected, windows);
        feedBlocked(batched, ops, block);
        EXPECT_EQ(batched.sampledOps(), per_op.sampledOps());
        expectOpsEqual(rec.trace(), per_op_rec.trace());
    }
}

TEST(BatchDispatch, ConsumeOpsPacksWholeRun)
{
    auto ops = syntheticStream(257);
    TraceRecorder rec;
    rec.consumeOps(ops.data(), ops.size());
    expectOpsEqual(rec.trace(), ops);
}

TEST(BatchDispatch, ConsumeOpsChunksRunsLongerThanScratch)
{
    // Runs longer than the thread-local scratch block arrive as
    // several batches; the concatenation must still be exact, and
    // back-to-back calls must not see stale scratch contents.
    auto ops = syntheticStream(defaultOpBlockOps * 2 + 123);
    TraceRecorder rec;
    rec.consumeOps(ops.data(), ops.size());
    rec.consumeOps(ops.data(), 5);
    auto expect = ops;
    expect.insert(expect.end(), ops.begin(), ops.begin() + 5);
    expectOpsEqual(rec.trace(), expect);
}

TEST(BatchDispatch, TraceWriterFilesByteIdentical)
{
    // Small chunks so every tested block size straddles chunk
    // boundaries; the produced files must still match byte for byte.
    auto ops = syntheticStream(2000);
    TraceMeta meta;
    meta.workload = "T-Batch";
    CodeLayout layout;
    layout.addFunction("kernel", CodeLayer::Application, 4096);

    auto write = [&](const std::string &path, size_t block) {
        TraceWriter writer(path, meta, layout, 64);
        if (block == 0)
            feedPerOp(writer, ops);
        else
            feedBlocked(writer, ops, block);
        writer.finish();
    };
    auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        return std::vector<char>(std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>());
    };

    std::string base_path =
        (fs::temp_directory_path() / "wcrt-batch-base.wtrace").string();
    write(base_path, 0);
    auto base = slurp(base_path);
    ASSERT_FALSE(base.empty());
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        std::string path =
            (fs::temp_directory_path() /
             ("wcrt-batch-" + std::to_string(block) + ".wtrace"))
                .string();
        write(path, block);
        EXPECT_EQ(slurp(path), base);
        fs::remove(path);
    }
    fs::remove(base_path);
}

} // namespace
} // namespace wcrt
