/**
 * @file
 * Cross-backend equivalence: the same relational question answered by
 * the Impala-style vectorized executor, the Hive-style MapReduce plan
 * and the Shark-style RDD plan must produce identical logical results
 * on identical tables — only the emitted traces may differ. This is
 * the SQL-layer analogue of the WordCount cross-stack test.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/table.hh"
#include "stack/mapreduce/engine.hh"
#include "stack/rdd/engine.hh"
#include "stack/sql/vectorized.hh"

namespace wcrt {
namespace {

class DiscardSink : public TraceSink
{
  public:
    void consume(const MicroOp &) override {}
};

/** GROUP BY buyer_id SUM(floor(amount)) computed three ways. */
class AggregationEquivalence : public ::testing::Test
{
  protected:
    AggregationEquivalence()
        : orders(TableGenerator(11).ecommerceOrders(env.heap, 300))
    {
    }

    /** Independent reference. */
    std::map<int64_t, int64_t>
    reference() const
    {
        std::map<int64_t, int64_t> out;
        const auto &buyers = orders.column("buyer_id").ints;
        const auto &amounts = orders.column("amount").doubles;
        for (uint64_t r = 0; r < orders.rows; ++r)
            out[buyers[r]] += static_cast<int64_t>(amounts[r]);
        return out;
    }

    /** Keyed record view of the table (like the JVM backends build). */
    RecordVec
    keyedRecords() const
    {
        const auto &buyers = orders.column("buyer_id").ints;
        const auto &amounts = orders.column("amount").doubles;
        RecordVec recs;
        for (uint64_t r = 0; r < orders.rows; ++r) {
            Record rec;
            rec.key = std::to_string(buyers[r]);
            rec.value =
                std::to_string(static_cast<int64_t>(amounts[r]));
            rec.keyAddr = orders.cellAddr(1, r);
            rec.valueAddr = orders.cellAddr(3, r);
            recs.push_back(std::move(rec));
        }
        return recs;
    }

    RunEnv env;
    DataTable orders;
};

TEST_F(AggregationEquivalence, ImpalaMatchesReference)
{
    VectorizedEngine impala(env.layout);
    DiscardSink sink;
    Tracer t(env.layout, sink);
    FunctionId root =
        env.layout.addFunction("root", CodeLayer::Application, 256);
    t.call(root);
    Selection all = impala.scan(env, t, orders);
    auto agg =
        impala.aggregateSum(env, t, orders, "buyer_id", "amount", all);
    t.ret();

    auto ref = reference();
    ASSERT_EQ(agg.size(), ref.size());
    for (auto [group, sum] : agg) {
        // Impala sums exact doubles; the reference floors per row, so
        // allow one unit per contributing row.
        EXPECT_NEAR(sum, static_cast<double>(ref[group]),
                    static_cast<double>(orders.rows));
    }
}

TEST_F(AggregationEquivalence, HiveStyleMapReduceMatchesReference)
{
    MapReduceEngine hive(env.layout);
    DiscardSink sink;
    Tracer t(env.layout, sink);

    class SumReducer : public Reducer
    {
      public:
        void registerCode(CodeLayout &) override {}
        void
        reduce(Tracer &tt, const std::string &key,
               const RecordVec &values, RecordVec &out) override
        {
            int64_t total = 0;
            for (const auto &v : values) {
                tt.intAlu(IntPurpose::Compute, 1);
                total += std::stoll(v.value);
            }
            Record r = values.front();
            r.key = key;
            r.value = std::to_string(total);
            out.push_back(std::move(r));
        }
    };
    class PassMapper : public Mapper
    {
      public:
        void registerCode(CodeLayout &) override {}
        void
        map(Tracer &tt, const Record &in, RecordVec &out) override
        {
            tt.intAlu(IntPurpose::IntAddress, 1);
            out.push_back(in);
        }
    };

    PassMapper m;
    SumReducer r;
    RecordVec out = hive.run(env, t, keyedRecords(), m, r);

    auto ref = reference();
    ASSERT_EQ(out.size(), ref.size());
    for (const auto &rec : out)
        EXPECT_EQ(std::stoll(rec.value), ref[std::stoll(rec.key)])
            << "group " << rec.key;
}

TEST_F(AggregationEquivalence, SharkStyleRddMatchesReference)
{
    RddEngine shark(env.layout);
    DiscardSink sink;
    Tracer t(env.layout, sink);

    RecordVec input = keyedRecords();
    RecordVec out =
        shark.parallelize(input)
            .reduceByKey([](Tracer &tt, const Record &a,
                            const Record &b) {
                tt.intAlu(IntPurpose::Compute, 1);
                Record r = a;
                r.value = std::to_string(std::stoll(a.value) +
                                         std::stoll(b.value));
                return r;
            })
            .collect(env, t);

    auto ref = reference();
    ASSERT_EQ(out.size(), ref.size());
    for (const auto &rec : out)
        EXPECT_EQ(std::stoll(rec.value), ref[std::stoll(rec.key)])
            << "group " << rec.key;
}

/** EXCEPT computed by Impala vs a Hive-style tagged reduce. */
TEST(DifferenceEquivalence, ImpalaMatchesHiveStyle)
{
    RunEnv env;
    TableGenerator gen(13);
    DataTable orders = gen.ecommerceOrders(env.heap, 150);
    DataTable items = gen.ecommerceItems(env.heap, 400, 150);
    DiscardSink sink;

    // Impala side.
    VectorizedEngine impala(env.layout);
    Tracer t1(env.layout, sink);
    FunctionId root =
        env.layout.addFunction("root", CodeLayer::Application, 256);
    t1.call(root);
    Selection all_orders = impala.scan(env, t1, orders);
    Selection all_items = impala.scan(env, t1, items);
    Selection only =
        impala.differenceInt64(env, t1, orders, "order_id", all_orders,
                               items, "order_id", all_items);
    t1.ret();
    std::set<int64_t> impala_keys;
    const auto &order_pk = orders.column("order_id").ints;
    for (auto row : only)
        impala_keys.insert(order_pk[row]);

    // Hive side: tag + group + keep A-only groups.
    MapReduceEngine hive(env.layout);
    Tracer t2(env.layout, sink);
    class PassMapper : public Mapper
    {
      public:
        void registerCode(CodeLayout &) override {}
        void
        map(Tracer &tt, const Record &in, RecordVec &out) override
        {
            tt.intAlu(IntPurpose::IntAddress, 1);
            out.push_back(in);
        }
    };
    class OnlyAReducer : public Reducer
    {
      public:
        void registerCode(CodeLayout &) override {}
        void
        reduce(Tracer &tt, const std::string &key,
               const RecordVec &values, RecordVec &out) override
        {
            bool only_a = true;
            for (const auto &v : values) {
                tt.intAlu(IntPurpose::Compute, 1);
                only_a = only_a && v.value == "A";
            }
            if (only_a) {
                Record r = values.front();
                r.key = key;
                out.push_back(std::move(r));
            }
        }
    };
    RecordVec input;
    for (uint64_t r = 0; r < orders.rows; ++r) {
        Record rec;
        rec.key = std::to_string(order_pk[r]);
        // std::string(1, ...) sidesteps a GCC 12 -O3 -Wrestrict false
        // positive on assign("A").
        rec.value = std::string(1, 'A');
        rec.keyAddr = orders.cellAddr(0, r);
        rec.valueAddr = rec.keyAddr;
        input.push_back(std::move(rec));
    }
    const auto &item_fk = items.column("order_id").ints;
    for (uint64_t r = 0; r < items.rows; ++r) {
        Record rec;
        rec.key = std::to_string(item_fk[r]);
        rec.value = std::string(1, 'B');
        rec.keyAddr = items.cellAddr(1, r);
        rec.valueAddr = rec.keyAddr;
        input.push_back(std::move(rec));
    }
    PassMapper m;
    OnlyAReducer red;
    RecordVec out = hive.run(env, t2, input, m, red);
    std::set<int64_t> hive_keys;
    for (const auto &rec : out)
        hive_keys.insert(std::stoll(rec.key));

    EXPECT_EQ(impala_keys, hive_keys);
}

} // namespace
} // namespace wcrt
