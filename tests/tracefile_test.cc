/**
 * @file
 * Tests for the trace file subsystem: encoding primitives, op-for-op
 * round trips, live-vs-replay equivalence for the real sinks,
 * corruption handling, the trace cache and the parallel replay runner.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/profiler.hh"
#include "core/trace_cache.hh"
#include "sim/footprint.hh"
#include "tracefile/capture.hh"
#include "tracefile/replay.hh"
#include "tracefile/trace_reader.hh"
#include "tracefile/trace_source.hh"
#include "tracefile/trace_writer.hh"
#include "trace/mix_counter.hh"
#include "trace/sampling.hh"
#include "workloads/registry.hh"

namespace wcrt {
namespace {

namespace fs = std::filesystem;

/** Unique temp path per test; removed by the fixture-free helper. */
std::string
tempTracePath(const std::string &tag)
{
    return (fs::temp_directory_path() / ("wcrt-test-" + tag + ".wtrace"))
        .string();
}

/** Sink that records every op for field-level comparison. */
class RecordingSink : public TraceSink
{
  public:
    void consume(const MicroOp &op) override { ops.push_back(op); }
    std::vector<MicroOp> ops;
};

void
expectOpsEqual(const std::vector<MicroOp> &a, const std::vector<MicroOp> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("op " + std::to_string(i));
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].purpose, b[i].purpose);
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].size, b[i].size);
        EXPECT_EQ(a[i].memAddr, b[i].memAddr);
        EXPECT_EQ(a[i].memSize, b[i].memSize);
        EXPECT_EQ(a[i].target, b[i].target);
        EXPECT_EQ(a[i].taken, b[i].taken);
    }
}

/** Ops exercising every encoder path, including the extension byte. */
std::vector<MicroOp>
awkwardOps()
{
    std::vector<MicroOp> ops;

    MicroOp alu;
    alu.kind = OpKind::IntAlu;
    alu.purpose = IntPurpose::IntAddress;
    alu.pc = 0x400000;
    ops.push_back(alu);

    MicroOp load;  // default-shaped load
    load.kind = OpKind::Load;
    load.pc = 0x400004;
    load.memAddr = 0x7fff0000;
    load.memSize = 8;
    ops.push_back(load);

    MicroOp store;  // backwards pc delta, mem below previous
    store.kind = OpKind::Store;
    store.pc = 0x3ffff0;
    store.memAddr = 0x1000;
    store.memSize = 1;
    ops.push_back(store);

    MicroOp branch;
    branch.kind = OpKind::BranchCond;
    branch.pc = 0x400010;
    branch.target = 0x400800;
    branch.taken = true;
    ops.push_back(branch);

    MicroOp weird_size;  // non-default instruction size
    weird_size.kind = OpKind::IntMul;
    weird_size.pc = 0x400014;
    weird_size.size = 12;
    ops.push_back(weird_size);

    MicroOp alu_mem;  // non-load op with a memory operand
    alu_mem.kind = OpKind::FpAlu;
    alu_mem.pc = 0x400020;
    alu_mem.memAddr = 0x9000;
    alu_mem.memSize = 16;
    ops.push_back(alu_mem);

    MicroOp addr_load;  // load carrying an address but no size
    addr_load.kind = OpKind::Load;
    addr_load.pc = 0x400024;
    addr_load.memAddr = 0xdeadbeef;
    addr_load.memSize = 0;
    ops.push_back(addr_load);

    MicroOp bare_load;  // load with no memory operand at all
    bare_load.kind = OpKind::Load;
    bare_load.pc = 0x400028;
    ops.push_back(bare_load);

    MicroOp call;
    call.kind = OpKind::Call;
    call.pc = 0x40002c;
    call.target = 0x500000;
    call.taken = true;
    ops.push_back(call);

    MicroOp far_pc;  // 64-bit pc, large deltas
    far_pc.kind = OpKind::Other;
    far_pc.pc = 0xffff800000000000ull;
    ops.push_back(far_pc);

    return ops;
}

CodeLayout
sampleLayout()
{
    CodeLayout layout;
    layout.addFunction("app.kernel", CodeLayer::Application, 512);
    layout.addFunction("fw.shuffle", CodeLayer::Framework, 65536);
    layout.addFunction("libc.memcpy", CodeLayer::Library, 4096);
    return layout;
}

TraceMeta
sampleMeta()
{
    TraceMeta meta;
    meta.workload = "T-Sample";
    meta.category = AppCategory::Service;
    meta.stackKind = StackKind::Spark;
    meta.scale = 0.125;
    return meta;
}

void
writeSample(const std::string &path, const std::vector<MicroOp> &ops,
            uint32_t chunk_ops = tracefile::defaultChunkOps)
{
    TraceWriter writer(path, sampleMeta(), sampleLayout(), chunk_ops);
    for (const auto &op : ops)
        writer.consume(op);
    IoCounters io;
    io.diskReadBytes = 123456;
    io.diskWriteBytes = 7890;
    io.networkBytes = 42;
    DataBehavior data;
    data.inputBytes = 1 << 20;
    data.intermediateBytes = 1 << 18;
    data.outputBytes = 1 << 10;
    writer.finish(io, data);
}

TEST(TraceFormat, VarintRoundTrip)
{
    std::vector<uint8_t> buf;
    const uint64_t values[] = {0, 1, 127, 128, 300, 1ull << 32,
                               (1ull << 63), UINT64_MAX};
    for (uint64_t v : values)
        tracefile::putVarint(buf, v);
    const int64_t signed_values[] = {0, -1, 1, -64, 64, INT64_MIN,
                                     INT64_MAX};
    for (int64_t v : signed_values)
        tracefile::putVarintSigned(buf, v);

    tracefile::Decoder dec(buf.data(), buf.size());
    for (uint64_t v : values)
        EXPECT_EQ(dec.varint(), v);
    for (int64_t v : signed_values)
        EXPECT_EQ(dec.varintSigned(), v);
    EXPECT_EQ(dec.remaining(), 0u);
}

TEST(TraceFormat, CrcMatchesReference)
{
    // The standard CRC-32 check value.
    const char *s = "123456789";
    EXPECT_EQ(tracefile::crc32(reinterpret_cast<const uint8_t *>(s), 9),
              0xCBF43926u);
}

TEST(TraceFile, OpForOpRoundTrip)
{
    std::string path = tempTracePath("roundtrip");
    auto ops = awkwardOps();
    writeSample(path, ops);

    TraceReader reader(path);
    EXPECT_EQ(reader.meta().workload, "T-Sample");
    EXPECT_EQ(reader.meta().category, AppCategory::Service);
    EXPECT_EQ(reader.meta().stackKind, StackKind::Spark);
    EXPECT_DOUBLE_EQ(reader.meta().scale, 0.125);
    EXPECT_EQ(reader.opCount(), ops.size());

    ASSERT_EQ(reader.regions().size(), 3u);
    EXPECT_EQ(reader.regions()[0].name, "app.kernel");
    EXPECT_EQ(reader.regions()[1].layer, CodeLayer::Framework);
    EXPECT_EQ(reader.regions()[1].bytes, 65536u);

    EXPECT_EQ(reader.io().diskReadBytes, 123456u);
    EXPECT_EQ(reader.io().networkBytes, 42u);
    EXPECT_EQ(reader.data().inputBytes, 1u << 20);
    EXPECT_EQ(reader.data().outputBytes, 1u << 10);

    RecordingSink sink;
    EXPECT_EQ(reader.replayInto(sink), ops.size());
    expectOpsEqual(ops, sink.ops);

    // A reader replays repeatably.
    RecordingSink again;
    reader.replayInto(again);
    expectOpsEqual(ops, again.ops);

    fs::remove(path);
}

TEST(TraceFile, MultiChunkRoundTrip)
{
    std::string path = tempTracePath("chunks");
    std::vector<MicroOp> ops;
    auto sample = awkwardOps();
    for (int rep = 0; rep < 50; ++rep)
        for (const auto &op : sample)
            ops.push_back(op);

    writeSample(path, ops, 7);  // force many small chunks

    TraceReader reader(path);
    EXPECT_GT(reader.chunkCount(), ops.size() / 7 - 1);
    RecordingSink sink;
    reader.replayInto(sink);
    expectOpsEqual(ops, sink.ops);
    fs::remove(path);
}

/** Batch-native sink recording each consumeBatch call's extent. */
class BatchRecordingSink : public TraceSink
{
  public:
    void
    consume(const MicroOp &op) override
    {
        batchSizes.push_back(1);
        ops.push_back(op);
    }

    void
    consumeBatch(const OpBlockView &batch) override
    {
        batchSizes.push_back(batch.count);
        for (size_t i = 0; i < batch.count; ++i)
            ops.push_back(batch[i]);
    }

    std::vector<MicroOp> ops;
    std::vector<size_t> batchSizes;
};

TEST(TraceFile, ReplayDeliversWholeChunksAsSingleBatches)
{
    std::string path = tempTracePath("chunk-batches");
    std::vector<MicroOp> ops;
    auto sample = awkwardOps();
    for (int rep = 0; rep < 12; ++rep)
        for (const auto &op : sample)
            ops.push_back(op);
    ASSERT_NE(ops.size() % 7, 0u);  // force a ragged final chunk

    writeSample(path, ops, 7);

    TraceReader reader(path);
    BatchRecordingSink sink;
    EXPECT_EQ(reader.replayInto(sink), ops.size());
    expectOpsEqual(ops, sink.ops);

    // Replay hands each chunk to the sink in exactly one batch: every
    // batch is a full chunk, the last carries the ragged remainder.
    ASSERT_EQ(sink.batchSizes.size(), reader.chunkCount());
    for (size_t i = 0; i + 1 < sink.batchSizes.size(); ++i)
        EXPECT_EQ(sink.batchSizes[i], 7u) << "chunk " << i;
    EXPECT_EQ(sink.batchSizes.back(), ops.size() % 7);
    fs::remove(path);
}

TEST(TraceFile, LiveAndReplayedSinksAgree)
{
    const double scale = 0.1;
    for (const char *name : {"M-WordCount", "H-WordCount"}) {
        SCOPED_TRACE(name);
        const WorkloadEntry &entry = findWorkload(name);

        // Live baselines, each on a fresh workload instance.
        MixCounter live_mix;
        {
            WorkloadPtr w = entry.make(scale);
            runThroughSink(*w, live_mix);
        }
        std::vector<uint32_t> sizes{16, 64, 256};
        FootprintSweep live_sweep(sizes);
        {
            WorkloadPtr w = entry.make(scale);
            runThroughSink(*w, live_sweep);
        }
        WorkloadRun live_run;
        {
            WorkloadPtr w = entry.make(scale);
            live_run = profileWorkload(*w, xeonE5645());
        }

        // One capture feeds all three replays.
        std::string path = tempTracePath(std::string("live-") + name);
        {
            WorkloadPtr w = entry.make(scale);
            captureTrace(*w, path, scale);
        }

        TraceReader reader(path);
        MixCounter replay_mix;
        reader.replayInto(replay_mix);
        EXPECT_EQ(replay_mix.total(), live_mix.total());
        for (size_t k = 0; k < numOpKinds; ++k) {
            EXPECT_EQ(replay_mix.count(static_cast<OpKind>(k)),
                      live_mix.count(static_cast<OpKind>(k)))
                << "kind " << k;
        }

        FootprintSweep replay_sweep(sizes);
        reader.replayInto(replay_sweep);
        auto live_inst = live_sweep.missRatios(SweepKind::Instruction);
        auto replay_inst = replay_sweep.missRatios(SweepKind::Instruction);
        auto live_data = live_sweep.missRatios(SweepKind::Data);
        auto replay_data = replay_sweep.missRatios(SweepKind::Data);
        for (size_t i = 0; i < sizes.size(); ++i) {
            EXPECT_EQ(live_inst[i], replay_inst[i]) << sizes[i] << " KB";
            EXPECT_EQ(live_data[i], replay_data[i]) << sizes[i] << " KB";
        }

        WorkloadRun replayed = profileWorkload(reader, xeonE5645());
        EXPECT_EQ(replayed.name, live_run.name);
        EXPECT_EQ(replayed.category, live_run.category);
        EXPECT_EQ(replayed.stackKind, live_run.stackKind);
        EXPECT_EQ(replayed.report.instructions,
                  live_run.report.instructions);
        EXPECT_EQ(replayed.report.ipc, live_run.report.ipc);
        EXPECT_EQ(replayed.report.l1iMpki, live_run.report.l1iMpki);
        EXPECT_EQ(replayed.report.l2Mpki, live_run.report.l2Mpki);
        EXPECT_EQ(replayed.io.diskReadBytes, live_run.io.diskReadBytes);
        EXPECT_EQ(replayed.data.inputBytes, live_run.data.inputBytes);
        EXPECT_EQ(replayed.sysBehavior, live_run.sysBehavior);
        for (size_t m = 0; m < numMetrics; ++m)
            EXPECT_EQ(replayed.metrics[m], live_run.metrics[m])
                << "metric " << m;

        fs::remove(path);
    }
}

TEST(TraceFile, TruncatedFileThrows)
{
    std::string path = tempTracePath("truncated");
    writeSample(path, awkwardOps());

    auto size = fs::file_size(path);
    fs::resize_file(path, size - 10);
    EXPECT_THROW(TraceReader reader(path), TraceFormatError);
    fs::remove(path);
}

TEST(TraceFile, CorruptPayloadThrows)
{
    std::string path = tempTracePath("corrupt");
    std::vector<MicroOp> ops;
    auto sample = awkwardOps();
    for (int rep = 0; rep < 200; ++rep)
        for (const auto &op : sample)
            ops.push_back(op);
    writeSample(path, ops);

    // Flip a byte well inside the op payload. Opening scans chunk
    // headers only; decoding must detect the CRC mismatch.
    auto size = fs::file_size(path);
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    f.get(byte);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.put(static_cast<char>(byte ^ 0x5a));
    f.close();

    EXPECT_THROW(
        {
            TraceReader reader(path);
            RecordingSink sink;
            reader.replayInto(sink);
        },
        TraceFormatError);
    fs::remove(path);
}

TEST(TraceFile, BadMagicThrows)
{
    std::string path = tempTracePath("magic");
    std::ofstream(path, std::ios::binary)
        << "this is not a trace file at all";
    EXPECT_THROW(TraceReader reader(path), TraceFormatError);
    fs::remove(path);
}

TEST(TraceFile, UnsupportedVersionThrows)
{
    std::string path = tempTracePath("version");
    writeSample(path, awkwardOps());

    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    f.seekp(4);  // version field follows the magic
    f.put(99);
    f.close();

    EXPECT_THROW(TraceReader reader(path), TraceFormatError);
    fs::remove(path);
}

TEST(TraceFile, MissingFileThrows)
{
    EXPECT_THROW(TraceReader reader(tempTracePath("nonexistent-xyz")),
                 TraceFormatError);
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

/** The complete file header (magic through region table) of a valid
 *  empty trace, reusable as a prefix for hand-crafted chunk bytes. */
std::vector<uint8_t>
sampleHeaderBytes()
{
    std::string path = tempTracePath("hand-header");
    writeSample(path, {});
    std::ifstream f(path, std::ios::binary);
    std::vector<uint8_t> file(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    f.close();
    fs::remove(path);
    // Header length = 16 fixed bytes + the payload size at offset 8.
    uint32_t payload_bytes = static_cast<uint32_t>(file[8]) |
                             static_cast<uint32_t>(file[9]) << 8 |
                             static_cast<uint32_t>(file[10]) << 16 |
                             static_cast<uint32_t>(file[11]) << 24;
    file.resize(16 + payload_bytes);
    return file;
}

/**
 * Write a trace whose single op chunk declares `op_count` ops over the
 * given payload, with correct CRCs throughout and a footer agreeing
 * with the declared count. The open-time scan (which only checks
 * bounds and the footer) accepts the file; decoding must then reject
 * the malformed payload itself rather than hit undefined behaviour.
 */
std::string
writeHandCraftedChunk(const std::string &tag, uint32_t op_count,
                      const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> bytes = sampleHeaderBytes();
    putU32(bytes, op_count);
    putU32(bytes, static_cast<uint32_t>(payload.size()));
    putU32(bytes, tracefile::crc32(payload.data(), payload.size()));
    bytes.insert(bytes.end(), payload.begin(), payload.end());

    std::vector<uint8_t> footer;
    tracefile::putVarint(footer, op_count);
    for (int i = 0; i < 6; ++i)  // IoCounters + DataBehavior, all zero
        tracefile::putVarint(footer, 0);
    putU32(bytes, 0);
    putU32(bytes, static_cast<uint32_t>(footer.size()));
    putU32(bytes, tracefile::crc32(footer.data(), footer.size()));
    bytes.insert(bytes.end(), footer.begin(), footer.end());

    std::string path = tempTracePath(tag);
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return path;
}

TEST(TraceFile, ChunkDeclaringPayloadPastEofThrows)
{
    std::string path = tempTracePath("bad-chunk-header");
    writeSample(path, awkwardOps());

    // Inflate the first chunk's declared payloadBytes far past the
    // end of the file; the open-time bounds check must reject it.
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    uint8_t fixed[16];
    f.read(reinterpret_cast<char *>(fixed), sizeof(fixed));
    uint32_t header_payload = static_cast<uint32_t>(fixed[8]) |
                              static_cast<uint32_t>(fixed[9]) << 8 |
                              static_cast<uint32_t>(fixed[10]) << 16 |
                              static_cast<uint32_t>(fixed[11]) << 24;
    f.seekp(16 + header_payload + 4);  // chunk header's payloadBytes
    const char huge[4] = {'\xf0', '\xff', '\xff', '\xff'};
    f.write(huge, 4);
    f.close();

    EXPECT_THROW(TraceReader reader(path), TraceFormatError);
    fs::remove(path);
}

TEST(TraceFile, OverlongVarintThrows)
{
    // A varint of ten continuation bytes is malformed no matter what
    // follows. Padding keeps >= maxEncodedOpBytes in the chunk so the
    // decode runs through the unchecked SWAR fast path, which must
    // still fail cleanly instead of reading on forever.
    std::vector<uint8_t> payload;
    payload.push_back(0x00);  // IntAlu, no extension; pc delta follows
    for (int i = 0; i < 40; ++i)
        payload.push_back(0x80);
    std::string path = writeHandCraftedChunk("overlong-varint", 2,
                                             payload);
    TraceReader reader(path);
    RecordingSink sink;
    EXPECT_THROW(reader.replayInto(sink), TraceFormatError);
    fs::remove(path);
}

TEST(TraceFile, ChunkEndingMidOpThrows)
{
    // Flags byte only, no pc delta: the checked tail decoder must
    // report truncation (the CRC is valid, so only payload-level
    // validation can catch this).
    std::string path =
        writeHandCraftedChunk("mid-op", 1, {0x00});
    TraceReader reader(path);
    RecordingSink sink;
    EXPECT_THROW(reader.replayInto(sink), TraceFormatError);
    fs::remove(path);
}

TEST(TraceFile, OpCountExceedingPayloadThrows)
{
    // One complete op, but the chunk claims five.
    std::vector<uint8_t> payload;
    payload.push_back(0x00);
    tracefile::putVarintSigned(payload, 0x400000);
    std::string path = writeHandCraftedChunk("count-over", 5, payload);
    TraceReader reader(path);
    RecordingSink sink;
    EXPECT_THROW(reader.replayInto(sink), TraceFormatError);
    fs::remove(path);
}

TEST(TraceFile, PayloadExceedingOpCountThrows)
{
    // Two complete ops, but the chunk claims one: the leftover bytes
    // must be rejected, not silently dropped.
    std::vector<uint8_t> payload;
    payload.push_back(0x00);
    tracefile::putVarintSigned(payload, 0x400000);
    payload.push_back(0x00);
    tracefile::putVarintSigned(payload, 4);
    std::string path = writeHandCraftedChunk("count-under", 1, payload);
    TraceReader reader(path);
    RecordingSink sink;
    EXPECT_THROW(reader.replayInto(sink), TraceFormatError);
    fs::remove(path);
}

TEST(TraceFile, OversizedHeaderPayloadThrows)
{
    // A corrupt header claiming ~4 GB of payload must be rejected by
    // the bounds check against the file size, not by attempting to
    // allocate (or map past) that much.
    std::string path = tempTracePath("huge-header");
    writeSample(path, awkwardOps());

    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    f.seekp(8);  // header payloadBytes field
    const char huge[4] = {'\xf0', '\xff', '\xff', '\xff'};
    f.write(huge, 4);
    f.close();

    for (TraceIo io : {TraceIo::Stream, TraceIo::Mmap}) {
        if (io == TraceIo::Mmap && !mmapAvailable())
            continue;
        try {
            TraceReader reader(path, {io, CrcMode::Always});
            FAIL() << "oversized header accepted via " << toString(io);
        } catch (const TraceFormatError &err) {
            EXPECT_NE(std::string(err.what())
                          .find("trace header truncated"),
                      std::string::npos)
                << err.what();
        }
    }
    fs::remove(path);
}

// ------------------------------------------------------- source parity

/** Whole-file read into memory. */
std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    return std::vector<uint8_t>((std::istreambuf_iterator<char>(f)),
                                std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<uint8_t> &bytes, size_t len)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(len));
}

/**
 * Open + full replay through one transport; returns the error text,
 * or empty when the file replayed cleanly.
 */
std::string
replayErrorMessage(const std::string &path, TraceIo io)
{
    try {
        TraceReader reader(path, {io, CrcMode::Always});
        RecordingSink sink;
        reader.replayInto(sink);
    } catch (const TraceFormatError &err) {
        return err.what();
    }
    return {};
}

TEST(TraceSourceParity, MmapMatchesStreamOnValidTrace)
{
    if (!mmapAvailable())
        GTEST_SKIP() << "no mmap on this platform";
    std::string path = tempTracePath("parity-valid");
    std::vector<MicroOp> ops;
    auto sample = awkwardOps();
    for (int rep = 0; rep < 40; ++rep)
        for (const auto &op : sample)
            ops.push_back(op);
    writeSample(path, ops, 7);  // many chunks

    TraceReader stream(path, {TraceIo::Stream, CrcMode::Always});
    TraceReader mmap(path, {TraceIo::Mmap, CrcMode::Always});
    EXPECT_STREQ(stream.ioName(), "stream");
    EXPECT_STREQ(mmap.ioName(), "mmap");
    EXPECT_EQ(stream.opCount(), mmap.opCount());
    EXPECT_EQ(stream.chunkCount(), mmap.chunkCount());
    EXPECT_EQ(stream.payloadBytes(), mmap.payloadBytes());
    EXPECT_EQ(stream.meta().workload, mmap.meta().workload);

    RecordingSink via_stream;
    stream.replayInto(via_stream);
    RecordingSink via_mmap;
    mmap.replayInto(via_mmap);
    expectOpsEqual(via_stream.ops, via_mmap.ops);
    expectOpsEqual(ops, via_mmap.ops);
    fs::remove(path);
}

TEST(TraceSourceParity, TruncationAtEveryLengthFailsIdentically)
{
    if (!mmapAvailable())
        GTEST_SKIP() << "no mmap on this platform";
    std::string full = tempTracePath("parity-trunc-src");
    writeSample(full, awkwardOps(), 3);
    std::vector<uint8_t> bytes = readFileBytes(full);
    fs::remove(full);
    ASSERT_GT(bytes.size(), 0u);

    // Every proper prefix must be rejected (the mandatory footer means
    // truncation anywhere is detectable), and the stream and mmap
    // transports must report the exact same error.
    std::string path = tempTracePath("parity-trunc");
    for (size_t len = 0; len < bytes.size(); ++len) {
        SCOPED_TRACE("prefix length " + std::to_string(len));
        writeFileBytes(path, bytes, len);
        std::string via_stream =
            replayErrorMessage(path, TraceIo::Stream);
        std::string via_mmap = replayErrorMessage(path, TraceIo::Mmap);
        ASSERT_FALSE(via_stream.empty());
        ASSERT_FALSE(via_mmap.empty());
        EXPECT_EQ(via_stream, via_mmap);
    }
    fs::remove(path);
}

TEST(TraceSourceParity, CorruptFixturesFailIdentically)
{
    if (!mmapAvailable())
        GTEST_SKIP() << "no mmap on this platform";
    std::string path = tempTracePath("parity-corrupt");
    std::vector<MicroOp> ops;
    auto sample = awkwardOps();
    for (int rep = 0; rep < 40; ++rep)
        for (const auto &op : sample)
            ops.push_back(op);
    writeSample(path, ops, 7);
    std::vector<uint8_t> pristine = readFileBytes(path);

    // Flip every byte of the file in turn would be slow; flip a spread
    // of offsets covering header fields, chunk framing and payload.
    for (size_t off = 0; off < pristine.size();
         off += 1 + pristine.size() / 97) {
        SCOPED_TRACE("corrupt byte at offset " + std::to_string(off));
        std::vector<uint8_t> bytes = pristine;
        bytes[off] ^= 0x5a;
        writeFileBytes(path, bytes, bytes.size());
        std::string via_stream =
            replayErrorMessage(path, TraceIo::Stream);
        std::string via_mmap = replayErrorMessage(path, TraceIo::Mmap);
        EXPECT_EQ(via_stream, via_mmap);
        // With full verification on, every single-byte corruption in
        // this fixture is caught (CRCs cover header, chunks, footer;
        // framing fields are bounds- and consistency-checked).
        EXPECT_FALSE(via_stream.empty());
    }
    fs::remove(path);
}

// --------------------------------------------------- CRC trust ladder

TEST(CrcElision, OnceVerifiesThenElides)
{
    std::string path = tempTracePath("crc-once");
    std::vector<MicroOp> ops;
    auto sample = awkwardOps();
    for (int rep = 0; rep < 40; ++rep)
        for (const auto &op : sample)
            ops.push_back(op);
    writeSample(path, ops, 7);

    ReaderOptions once{TraceIo::Auto, CrcMode::Once};
    TraceReader first(path, once);
    ASSERT_GT(first.chunkCount(), 1u);
    RecordingSink s1;
    first.replayInto(s1);
    // Untrusted file: the first replay pays the full CRC pass...
    EXPECT_EQ(first.chunkCrcChecks(), first.chunkCount());

    // ...which promotes it, so a second reader elides every chunk CRC.
    TraceReader second(path, once);
    RecordingSink s2;
    second.replayInto(s2);
    EXPECT_EQ(second.chunkCrcChecks(), 0u);
    expectOpsEqual(s1.ops, s2.ops);
    fs::remove(path);
}

TEST(CrcElision, AlwaysChecksEveryReplay)
{
    std::string path = tempTracePath("crc-always");
    writeSample(path, awkwardOps(), 3);

    TraceReader reader(path, {TraceIo::Auto, CrcMode::Always});
    RecordingSink s1;
    reader.replayInto(s1);
    RecordingSink s2;
    reader.replayInto(s2);
    // Always ignores the verified-trace registry entirely.
    EXPECT_EQ(reader.chunkCrcChecks(), 2 * reader.chunkCount());
    fs::remove(path);
}

TEST(CrcElision, OnceStillRejectsCorruptUntrustedFile)
{
    std::string path = tempTracePath("crc-once-corrupt");
    std::vector<MicroOp> ops;
    auto sample = awkwardOps();
    for (int rep = 0; rep < 40; ++rep)
        for (const auto &op : sample)
            ops.push_back(op);
    writeSample(path, ops, 7);

    // Corrupt a byte inside the first chunk's op payload (framing
    // stays valid, so the file opens and only the CRC pass can catch
    // it). This process has never verified this file, so Once behaves
    // exactly like Always.
    std::vector<uint8_t> bytes = readFileBytes(path);
    uint32_t header_payload = static_cast<uint32_t>(bytes[8]) |
                              static_cast<uint32_t>(bytes[9]) << 8 |
                              static_cast<uint32_t>(bytes[10]) << 16 |
                              static_cast<uint32_t>(bytes[11]) << 24;
    bytes[16 + header_payload + 12 + 1] ^= 0x5a;
    writeFileBytes(path, bytes, bytes.size());

    TraceReader reader(path, {TraceIo::Auto, CrcMode::Once});
    RecordingSink sink;
    EXPECT_THROW(reader.replayInto(sink), TraceFormatError);
    fs::remove(path);
}

TEST(CrcElision, NeverSkipsChunkCrcButKeepsStructuralChecks)
{
    std::string path = tempTracePath("crc-never");
    std::vector<MicroOp> ops;
    auto sample = awkwardOps();
    for (int rep = 0; rep < 10; ++rep)
        for (const auto &op : sample)
            ops.push_back(op);
    writeSample(path, ops, 7);

    // Flip only the *stored CRC field* of the first op chunk — the
    // payload bytes stay intact, so skipping the CRC pass must still
    // decode the original ops.
    std::vector<uint8_t> bytes = readFileBytes(path);
    uint32_t header_payload = static_cast<uint32_t>(bytes[8]) |
                              static_cast<uint32_t>(bytes[9]) << 8 |
                              static_cast<uint32_t>(bytes[10]) << 16 |
                              static_cast<uint32_t>(bytes[11]) << 24;
    size_t chunk_crc_off = 16 + header_payload + 8;
    bytes[chunk_crc_off] ^= 0xff;
    writeFileBytes(path, bytes, bytes.size());

    TraceReader strict(path, {TraceIo::Auto, CrcMode::Always});
    RecordingSink rejected;
    EXPECT_THROW(strict.replayInto(rejected), TraceFormatError);

    TraceReader trusting(path, {TraceIo::Auto, CrcMode::Never});
    RecordingSink sink;
    trusting.replayInto(sink);
    EXPECT_EQ(trusting.chunkCrcChecks(), 0u);
    expectOpsEqual(ops, sink.ops);

    // Never elides op-chunk CRCs only: header corruption still fails
    // at open (the 16-byte fixed prefix is followed by the CRC'd
    // header payload).
    bytes = readFileBytes(path);
    bytes[chunk_crc_off] ^= 0xff;  // restore the chunk CRC
    bytes[17] ^= 0x5a;             // corrupt the header payload
    writeFileBytes(path, bytes, bytes.size());
    EXPECT_THROW(TraceReader(path, {TraceIo::Auto, CrcMode::Never}),
                 TraceFormatError);
    fs::remove(path);
}

TEST(CrcElision, TrustDoesNotOutliveRewrite)
{
    std::string path = tempTracePath("crc-rewrite");
    writeSample(path, awkwardOps(), 3);

    ReaderOptions once{TraceIo::Auto, CrcMode::Once};
    {
        TraceReader reader(path, once);
        RecordingSink sink;
        reader.replayInto(sink);  // marks this (path, size, mtime)
    }

    // Rewrite the file with different (and then corrupted) contents;
    // the registry key changes with the bytes, so the stale trust
    // must not let the corruption through.
    std::vector<MicroOp> bigger;
    auto sample = awkwardOps();
    for (int rep = 0; rep < 10; ++rep)
        for (const auto &op : sample)
            bigger.push_back(op);
    writeSample(path, bigger, 7);
    std::vector<uint8_t> bytes = readFileBytes(path);
    uint32_t header_payload = static_cast<uint32_t>(bytes[8]) |
                              static_cast<uint32_t>(bytes[9]) << 8 |
                              static_cast<uint32_t>(bytes[10]) << 16 |
                              static_cast<uint32_t>(bytes[11]) << 24;
    bytes[16 + header_payload + 12 + 1] ^= 0x5a;
    writeFileBytes(path, bytes, bytes.size());

    TraceReader reader(path, once);
    RecordingSink sink;
    EXPECT_THROW(reader.replayInto(sink), TraceFormatError);
    fs::remove(path);
}

TEST(CrcElision, FreshCaptureIsBornTrusted)
{
    std::string dir =
        (fs::temp_directory_path() / "wcrt-test-crc-capture").string();
    fs::remove_all(dir);
    TraceCache cache(dir);
    const WorkloadEntry &entry = findWorkload("M-Grep");
    std::string path =
        cache.ensure(entry.name, 0.05, [&] { return entry.make(0.05); });

    // The cache just wrote these bytes itself, so a CrcMode::Once
    // replay may skip the verification pass from the start.
    TraceReader reader(path, {TraceIo::Auto, CrcMode::Once});
    CountingSink sink;
    reader.replayInto(sink);
    EXPECT_EQ(reader.chunkCrcChecks(), 0u);
    EXPECT_EQ(sink.ops(), reader.opCount());
    fs::remove_all(dir);
}

TEST(TraceSourceFlags, ParseAndFormatRoundTrip)
{
    TraceIo io = TraceIo::Auto;
    EXPECT_TRUE(parseTraceIo("stream", io));
    EXPECT_EQ(io, TraceIo::Stream);
    EXPECT_TRUE(parseTraceIo("mmap", io));
    EXPECT_EQ(io, TraceIo::Mmap);
    EXPECT_TRUE(parseTraceIo("auto", io));
    EXPECT_EQ(io, TraceIo::Auto);
    EXPECT_FALSE(parseTraceIo("pread", io));
    EXPECT_EQ(io, TraceIo::Auto);  // untouched on failure

    CrcMode crc = CrcMode::Always;
    EXPECT_TRUE(parseCrcMode("once", crc));
    EXPECT_EQ(crc, CrcMode::Once);
    EXPECT_TRUE(parseCrcMode("never", crc));
    EXPECT_EQ(crc, CrcMode::Never);
    EXPECT_TRUE(parseCrcMode("always", crc));
    EXPECT_EQ(crc, CrcMode::Always);
    EXPECT_FALSE(parseCrcMode("sometimes", crc));
    EXPECT_EQ(crc, CrcMode::Always);

    EXPECT_STREQ(toString(TraceIo::Auto), "auto");
    EXPECT_STREQ(toString(TraceIo::Stream), "stream");
    EXPECT_STREQ(toString(TraceIo::Mmap), "mmap");
    EXPECT_STREQ(toString(CrcMode::Always), "always");
    EXPECT_STREQ(toString(CrcMode::Once), "once");
    EXPECT_STREQ(toString(CrcMode::Never), "never");
}

/** Workload whose execute() dies mid-capture. */
class ThrowingWorkload : public Workload
{
  public:
    std::string name() const override { return "T-Throwing"; }
    AppCategory category() const override
    {
        return AppCategory::Service;
    }
    StackKind stack() const override { return StackKind::Mpi; }
    void setup(RunEnv &) override {}
    void
    execute(RunEnv &, Tracer &) override
    {
        throw std::runtime_error("workload failed mid-capture");
    }
};

TEST(TraceCapture, FailedCaptureRemovesTmpFile)
{
    std::string path = tempTracePath("failed-capture");
    std::string tmp = path + ".tmp-" + std::to_string(::getpid());
    ThrowingWorkload workload;
    EXPECT_THROW(captureTrace(workload, path, 1.0),
                 std::runtime_error);
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(tmp));
}

TEST(TraceCacheTest, CapturesOnceThenHits)
{
    std::string dir =
        (fs::temp_directory_path() / "wcrt-test-cache").string();
    fs::remove_all(dir);
    TraceCache cache(dir);
    const WorkloadEntry &entry = findWorkload("M-Grep");
    auto make = [&] { return entry.make(0.05); };

    EXPECT_FALSE(cache.has(entry.name, 0.05));
    bool captured = false;
    std::string path = cache.ensure(entry.name, 0.05, make, &captured);
    EXPECT_TRUE(captured);
    EXPECT_TRUE(cache.has(entry.name, 0.05));

    std::string again = cache.ensure(entry.name, 0.05, make, &captured);
    EXPECT_FALSE(captured);
    EXPECT_EQ(path, again);

    // A different scale is a different cache entry.
    EXPECT_FALSE(cache.has(entry.name, 0.075));

    // A corrupted cache file is re-captured, not trusted.
    fs::resize_file(path, fs::file_size(path) / 2);
    cache.ensure(entry.name, 0.05, make, &captured);
    EXPECT_TRUE(captured);
    TraceReader reader(path);
    EXPECT_GT(reader.opCount(), 0u);

    fs::remove_all(dir);
}

TEST(Replay, WorkerCountIsAlwaysPositive)
{
    // requested == 0 defers to hardware_concurrency(), which is
    // allowed to return 0; the pool size must still come back >= 1.
    EXPECT_GE(replayWorkers(0), 1u);
    EXPECT_EQ(replayWorkers(1), 1u);
    EXPECT_EQ(replayWorkers(7), 7u);
}

TEST(Replay, ParallelForDefaultThreadCountRunsEveryJob)
{
    std::vector<int> hits(97, 0);
    parallelFor(hits.size(), [&](size_t i) { hits[i]++; }, 0);
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "job " << i;
}

TEST(Replay, ReplayOnConfigsDefaultJobsMatchesSerial)
{
    const WorkloadEntry &entry = findWorkload("M-Grep");
    std::string path = tempTracePath("default-jobs");
    {
        WorkloadPtr w = entry.make(0.05);
        captureTrace(*w, path, 0.05);
    }

    std::vector<MachineConfig> configs{xeonE5645(), atomD510()};
    auto defaulted = replayOnConfigs(path, configs, 0);  // jobs = auto
    ASSERT_EQ(defaulted.size(), configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        TraceReader reader(path);
        WorkloadRun serial = profileWorkload(reader, configs[i]);
        EXPECT_EQ(defaulted[i].ipc, serial.report.ipc);
        EXPECT_EQ(defaulted[i].instructions,
                  serial.report.instructions);
    }
    fs::remove(path);
}

TEST(Replay, ParallelForRunsEveryJobOnce)
{
    std::vector<int> hits(257, 0);
    parallelFor(hits.size(),
                [&](size_t i) { hits[i]++; }, 4);
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "job " << i;

    // Serial fallback covers everything too.
    std::fill(hits.begin(), hits.end(), 0);
    parallelFor(hits.size(), [&](size_t i) { hits[i]++; }, 1);
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "job " << i;
}

TEST(Replay, ParallelForPropagatesExceptions)
{
    EXPECT_THROW(parallelFor(64,
                             [](size_t i) {
                                 if (i == 33)
                                     throw std::runtime_error("boom");
                             },
                             4),
                 std::runtime_error);
}

TEST(Replay, ParallelReplayMatchesSerial)
{
    const WorkloadEntry &entry = findWorkload("M-Sort");
    std::string path = tempTracePath("parallel");
    {
        WorkloadPtr w = entry.make(0.1);
        captureTrace(*w, path, 0.1);
    }

    std::vector<MachineConfig> configs{xeonE5645(), atomD510(),
                                       atomInOrderSim(32)};
    auto parallel = replayOnConfigs(path, configs, 3);
    ASSERT_EQ(parallel.size(), configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        TraceReader reader(path);
        WorkloadRun serial = profileWorkload(reader, configs[i]);
        EXPECT_EQ(parallel[i].machine, configs[i].name);
        EXPECT_EQ(parallel[i].ipc, serial.report.ipc);
        EXPECT_EQ(parallel[i].instructions,
                  serial.report.instructions);
        EXPECT_EQ(parallel[i].l1iMpki, serial.report.l1iMpki);
    }

    // The sweep-ladder replay equals a live one-pass sweep.
    std::vector<uint32_t> ladder{16, 32, 64, 128};
    auto replayed = replaySweepLadder(path, SweepKind::Instruction,
                                      ladder, 4);
    FootprintSweep live(ladder);
    {
        WorkloadPtr w = entry.make(0.1);
        runThroughSink(*w, live);
    }
    auto live_curve = live.missRatios(SweepKind::Instruction);
    ASSERT_EQ(replayed.size(), ladder.size());
    for (size_t i = 0; i < ladder.size(); ++i)
        EXPECT_EQ(replayed[i], live_curve[i]) << ladder[i] << " KB";

    fs::remove(path);
}

TEST(Replay, ProfileTracesKeepsInputOrder)
{
    TraceCache cache(
        (fs::temp_directory_path() / "wcrt-test-order").string());
    std::vector<std::string> names{"M-WordCount", "M-Grep", "M-Sort"};
    std::vector<std::string> paths;
    for (const auto &name : names) {
        const WorkloadEntry &entry = findWorkload(name);
        paths.push_back(cache.ensure(
            name, 0.05, [&] { return entry.make(0.05); }));
    }

    auto runs = profileTraces(paths, xeonE5645(), {}, 3);
    ASSERT_EQ(runs.size(), names.size());
    for (size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(runs[i].name, names[i]);

    fs::remove_all(cache.directory());
}

TEST(Replay, OnConfigsJobsOneMatchesJobsMany)
{
    // jobs = 1 takes the strictly serial fast path (no pool, no
    // ticket); jobs = N fans out over the shared pool. Every report
    // field must come out bit-identical either way.
    const WorkloadEntry &entry = findWorkload("M-Grep");
    std::string path = tempTracePath("jobs-identity");
    {
        WorkloadPtr w = entry.make(0.05);
        captureTrace(*w, path, 0.05);
    }

    std::vector<MachineConfig> configs{xeonE5645(), atomD510(),
                                       atomInOrderSim(32)};
    auto serial = replayOnConfigs(path, configs, 1);
    auto pooled = replayOnConfigs(path, configs, 4);
    ASSERT_EQ(serial.size(), pooled.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(pooled[i].machine, serial[i].machine);
        EXPECT_EQ(pooled[i].instructions, serial[i].instructions);
        EXPECT_EQ(pooled[i].ipc, serial[i].ipc);
        EXPECT_EQ(pooled[i].l1iMpki, serial[i].l1iMpki);
        EXPECT_EQ(pooled[i].l1dMpki, serial[i].l1dMpki);
        EXPECT_EQ(pooled[i].l2Mpki, serial[i].l2Mpki);
    }
    fs::remove(path);
}

TEST(Replay, TracesOnJobsOneMatchesJobsMany)
{
    std::vector<std::string> names{"M-WordCount", "M-Grep", "M-Sort"};
    std::vector<std::string> paths;
    for (const auto &name : names) {
        const WorkloadEntry &entry = findWorkload(name);
        std::string path = tempTracePath("traceson-" + name);
        WorkloadPtr w = entry.make(0.05);
        captureTrace(*w, path, 0.05);
        paths.push_back(path);
    }

    auto serial = replayTracesOn(paths, xeonE5645(), 1);
    auto pooled = replayTracesOn(paths, xeonE5645(), 4);
    ASSERT_EQ(serial.size(), pooled.size());
    for (size_t i = 0; i < paths.size(); ++i) {
        EXPECT_EQ(pooled[i].instructions, serial[i].instructions);
        EXPECT_EQ(pooled[i].ipc, serial[i].ipc);
        EXPECT_EQ(pooled[i].l1dMpki, serial[i].l1dMpki);
    }
    for (const auto &path : paths)
        fs::remove(path);
}

TEST(Replay, SweepInsidePooledReplayDoesNotDeadlock)
{
    // Replay runners and the sweep share one process-wide pool, so a
    // sweep ladder launched from inside a pooled replay job nests
    // bounded tickets. The inner wait() participates in its own
    // fan-out, so this must complete (and stay bit-identical) even if
    // every pool thread is parked on an outer job.
    const WorkloadEntry &entry = findWorkload("M-Grep");
    std::string path = tempTracePath("nested-sweep");
    {
        WorkloadPtr w = entry.make(0.05);
        captureTrace(*w, path, 0.05);
    }

    std::vector<uint32_t> ladder{16, 64, 256};
    auto expect =
        replaySweepLadder(path, SweepKind::Unified, ladder, 1);
    std::vector<std::vector<double>> got(3);
    parallelFor(got.size(), [&](size_t i) {
        got[i] = replaySweepLadder(path, SweepKind::Unified, ladder, 4);
    }, 3);
    for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].size(), expect.size()) << "job " << i;
        for (size_t k = 0; k < ladder.size(); ++k)
            EXPECT_EQ(got[i][k], expect[k])
                << "job " << i << ", " << ladder[k] << " KB";
    }
    fs::remove(path);
}

} // namespace
} // namespace wcrt
