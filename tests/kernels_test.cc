/**
 * @file
 * Functional-equivalence tests: the workload kernels do real work, so
 * their results can be checked against independent references, and
 * the same algorithm must produce the same logical answer on every
 * software stack (only the trace differs).
 */

#include <gtest/gtest.h>

#include <map>
#include <string_view>

#include "base/strings.hh"
#include "datagen/text.hh"
#include "stack/mapreduce/engine.hh"
#include "stack/native/engine.hh"
#include "stack/rdd/engine.hh"
#include "workloads/kernels.hh"

namespace wcrt {
namespace {

class DiscardSink : public TraceSink
{
  public:
    void consume(const MicroOp &) override {}
};

class KernelTest : public ::testing::Test
{
  protected:
    KernelTest() : kernels(layout), tracer(layout, sink)
    {
        root = layout.addFunction("root", CodeLayer::Application, 256);
    }
    void SetUp() override { tracer.call(root); }
    void TearDown() override { tracer.ret(); }

    CodeLayout layout;
    DiscardSink sink;
    AppKernels kernels;
    Tracer tracer;
    FunctionId root;
};

TEST_F(KernelTest, TokenizeMatchesSplit)
{
    std::string doc = "the quick brown fox jumps over the lazy dog";
    auto tokens = kernels.tokenize(tracer, doc, 0x1000);
    auto reference = splitWhitespace(doc);
    ASSERT_EQ(tokens.size(), reference.size());
    for (size_t i = 0; i < tokens.size(); ++i)
        EXPECT_EQ(std::string(tokens[i]), reference[i]);
}

TEST_F(KernelTest, GrepMatchCountsOccurrences)
{
    std::string text = "abc the abc the abc thethe xyz";
    EXPECT_EQ(kernels.grepMatch(tracer, text, 0x1000, "the"), 4u);
    EXPECT_EQ(kernels.grepMatch(tracer, text, 0x1000, "abc"), 3u);
    EXPECT_EQ(kernels.grepMatch(tracer, text, 0x1000, "zzz"), 0u);
    EXPECT_EQ(kernels.grepMatch(tracer, text, 0x1000, ""), 0u);
}

TEST_F(KernelTest, ParseIntRoundTrips)
{
    EXPECT_EQ(kernels.parseInt(tracer, "0", 0x1000), 0);
    EXPECT_EQ(kernels.parseInt(tracer, "12345", 0x1000), 12345);
    EXPECT_EQ(kernels.parseInt(tracer, "42abc", 0x1000), 42);
}

TEST_F(KernelTest, FormatValueRoundTrips)
{
    for (int64_t v : {0ll, 7ll, 123456789ll}) {
        std::string s = kernels.formatValue(tracer, v);
        EXPECT_EQ(s, std::to_string(v));
    }
}

TEST_F(KernelTest, DistanceIsEuclideanSquared)
{
    double a[3] = {1.0, 2.0, 3.0};
    double b[3] = {4.0, 6.0, 3.0};
    double d = kernels.distance(tracer, a, 0x1000, b, 0x2000, 3);
    EXPECT_DOUBLE_EQ(d, 9.0 + 16.0 + 0.0);
}

TEST_F(KernelTest, ClosestCenterFindsArgmin)
{
    double point[2] = {5.0, 5.0};
    std::vector<std::vector<double>> centers = {
        {0.0, 0.0}, {5.5, 5.5}, {10.0, 10.0}};
    uint32_t c = kernels.closestCenter(tracer, point, 0x1000, centers,
                                       0x2000, 2);
    EXPECT_EQ(c, 1u);
}

/** WordCount on every stack must produce the same logical counts. */
class CrossStackWordCount : public ::testing::Test
{
  protected:
    /** Reference word counts computed directly. */
    static std::map<std::string, int64_t>
    reference(const TextCorpus &corpus)
    {
        std::map<std::string, int64_t> counts;
        for (const auto &doc : corpus.docs)
            for (const auto &w : splitWhitespace(doc))
                ++counts[w];
        return counts;
    }
};

TEST_F(CrossStackWordCount, MapReduceEngineMatchesReference)
{
    RunEnv env;
    TextGenOptions o;
    o.vocabulary = 200;
    o.wordsPerDoc = 40;
    TextCorpus corpus = TextGenerator(o).generate(env.heap, "c", 20);
    auto ref = reference(corpus);

    AppKernels kernels(env.layout);
    MapReduceEngine engine(env.layout);
    DiscardSink sink;
    Tracer t(env.layout, sink);

    class WcMapper : public Mapper
    {
      public:
        explicit WcMapper(AppKernels &k) : k(k) {}
        void registerCode(CodeLayout &) override {}
        void
        map(Tracer &tt, const Record &in, RecordVec &out) override
        {
            for (auto tok : k.tokenize(tt, in.value, in.valueAddr)) {
                Record r;
                r.key = std::string(tok);
                // std::string(1, ...) sidesteps a GCC 12 -O3 -Wrestrict
                // false positive on assign("1").
                r.value = std::string(1, '1');
                r.keyAddr = in.valueAddr;
                r.valueAddr = in.valueAddr;
                out.push_back(std::move(r));
            }
        }
        AppKernels &k;
    };
    class WcReducer : public Reducer
    {
      public:
        explicit WcReducer(AppKernels &k) : k(k) {}
        void registerCode(CodeLayout &) override {}
        void
        reduce(Tracer &tt, const std::string &key,
               const RecordVec &values, RecordVec &out) override
        {
            int64_t total = 0;
            for (const auto &v : values)
                total += k.parseInt(tt, v.value, v.valueAddr);
            Record r;
            r.key = key;
            r.value = std::to_string(total);
            r.keyAddr = values.front().keyAddr;
            r.valueAddr = values.front().valueAddr;
            out.push_back(std::move(r));
        }
        AppKernels &k;
    };

    RecordVec input;
    for (size_t d = 0; d < corpus.docs.size(); ++d) {
        Record r;
        r.key = std::to_string(d);
        r.value = corpus.docs[d];
        r.keyAddr = corpus.docAddr(d);
        r.valueAddr = corpus.docAddr(d);
        input.push_back(std::move(r));
    }
    WcMapper m(kernels);
    WcReducer red(kernels);
    RecordVec out = engine.run(env, t, input, m, red);

    std::map<std::string, int64_t> got;
    for (const auto &r : out)
        got[r.key] = std::stoll(r.value);
    EXPECT_EQ(got, ref);
}

TEST_F(CrossStackWordCount, NativeEngineMatchesReference)
{
    RunEnv env;
    TextGenOptions o;
    o.vocabulary = 200;
    o.wordsPerDoc = 40;
    TextCorpus corpus = TextGenerator(o).generate(env.heap, "c", 20);
    auto ref = reference(corpus);

    AppKernels kernels(env.layout);
    NativeEngine engine(env.layout);
    DiscardSink sink;
    Tracer t(env.layout, sink);
    FunctionId root =
        env.layout.addFunction("root", CodeLayer::Application, 256);

    class WcKernel : public NativeKernel
    {
      public:
        explicit WcKernel(AppKernels &k, uint32_t ranks)
            : k(k), ranks(ranks)
        {
        }
        void registerCode(CodeLayout &) override {}
        void
        processPartition(Tracer &tt, const RecordVec &in,
                         std::vector<RecordVec> &to_ranks) override
        {
            std::map<std::string, int64_t> local;
            for (const auto &rec : in)
                for (auto tok :
                     k.tokenize(tt, rec.value, rec.valueAddr))
                    ++local[std::string(tok)];
            for (const auto &[word, count] : local) {
                Record r;
                r.key = word;
                r.value = std::to_string(count);
                r.keyAddr = in.front().valueAddr;
                r.valueAddr = in.front().valueAddr;
                to_ranks[fnv1a(word) % ranks].push_back(std::move(r));
            }
        }
        void
        finalize(Tracer &tt, const RecordVec &received, RecordVec &out)
            override
        {
            std::map<std::string, int64_t> merged;
            for (const auto &rec : received)
                merged[rec.key] +=
                    k.parseInt(tt, rec.value, rec.valueAddr);
            for (const auto &[word, count] : merged) {
                Record r;
                r.key = word;
                r.value = std::to_string(count);
                out.push_back(std::move(r));
            }
        }
        AppKernels &k;
        uint32_t ranks;
    };

    RecordVec input;
    for (size_t d = 0; d < corpus.docs.size(); ++d) {
        Record r;
        r.key = std::to_string(d);
        r.value = corpus.docs[d];
        r.keyAddr = corpus.docAddr(d);
        r.valueAddr = corpus.docAddr(d);
        input.push_back(std::move(r));
    }
    t.call(root);
    WcKernel kernel(kernels, engine.config().ranks);
    RecordVec out = engine.run(env, t, input, kernel);
    t.ret();

    std::map<std::string, int64_t> got;
    for (const auto &r : out)
        got[r.key] += std::stoll(r.value);
    EXPECT_EQ(got, ref);
}

} // namespace
} // namespace wcrt
