/**
 * @file
 * Unit tests for the system-behaviour model: profile computation,
 * the paper's classification rule and the data-volume thresholds.
 */

#include <gtest/gtest.h>

#include "sysmon/sysmon.hh"

namespace wcrt {
namespace {

NodeModel
testNode()
{
    NodeModel n;
    n.cpuGips = 1.0;
    n.diskMBps = 100.0;
    n.networkMBps = 100.0;
    n.diskQueueDepth = 8.0;
    return n;
}

TEST(SysProfile, PureCpuRunIsCpuIntensive)
{
    IoCounters io;  // no I/O at all
    SystemProfile p = computeProfile(1'000'000'000, io, testNode());
    EXPECT_GT(p.cpuUtilization, 0.85);
    EXPECT_EQ(classifySystemBehavior(p), SystemBehavior::CpuIntensive);
}

TEST(SysProfile, PureIoRunIsIoIntensive)
{
    IoCounters io;
    io.diskReadBytes = 10ull * 1000 * 1000 * 1000;  // 100 s of disk
    SystemProfile p = computeProfile(1'000'000, io, testNode());
    EXPECT_LT(p.cpuUtilization, 0.60);
    EXPECT_GT(p.ioWaitRatio, 0.20);
    EXPECT_EQ(classifySystemBehavior(p), SystemBehavior::IoIntensive);
}

TEST(SysProfile, BalancedRunIsHybrid)
{
    IoCounters io;
    // 1 s of disk vs 0.7 s of CPU: I/O wait is substantial but CPU
    // utilization stays above the IO rule's 60% ceiling.
    io.diskReadBytes = 100ull * 1000 * 1000;
    SystemProfile p = computeProfile(700'000'000, io, testNode());
    EXPECT_EQ(classifySystemBehavior(p), SystemBehavior::Hybrid)
        << "cpu=" << p.cpuUtilization << " iowait=" << p.ioWaitRatio
        << " weighted=" << p.weightedDiskIoTimeRatio;
}

TEST(SysProfile, WeightedDiskTimeReflectsQueueDepth)
{
    NodeModel node = testNode();
    node.diskQueueDepth = 32.0;
    IoCounters io;
    io.diskReadBytes = 60ull * 1000 * 1000;  // 0.6 s disk
    SystemProfile p = computeProfile(300'000'000, io, node);
    // Weighted ratio = disk time x queue depth / wall time.
    EXPECT_GT(p.weightedDiskIoTimeRatio, 10.0);
    EXPECT_EQ(classifySystemBehavior(p), SystemBehavior::IoIntensive);
    // A shallow queue lowers the weighted ratio proportionally.
    node.diskQueueDepth = 2.0;
    SystemProfile q = computeProfile(300'000'000, io, node);
    EXPECT_LT(q.weightedDiskIoTimeRatio,
              p.weightedDiskIoTimeRatio / 10.0);
}

TEST(SysProfile, WallTimeModelsOverlap)
{
    IoCounters io;
    io.diskReadBytes = 100ull * 1000 * 1000;  // 1 s disk
    SystemProfile p = computeProfile(1'000'000'000, io, testNode());
    // 1 s CPU + 1 s disk pipelined: wall in (1.0, 2.0).
    EXPECT_GT(p.wallSeconds, 1.0);
    EXPECT_LT(p.wallSeconds, 2.0);
}

TEST(SysProfile, BandwidthNumbersAreDerived)
{
    IoCounters io;
    io.diskReadBytes = 50ull * 1000 * 1000;
    io.diskWriteBytes = 25ull * 1000 * 1000;
    io.networkBytes = 10ull * 1000 * 1000;
    SystemProfile p = computeProfile(100'000'000, io, testNode());
    EXPECT_GT(p.diskReadMBps, 0.0);
    EXPECT_GT(p.diskWriteMBps, 0.0);
    EXPECT_GT(p.networkMBps, 0.0);
    EXPECT_GT(p.diskReadMBps, p.diskWriteMBps);
}

TEST(DataVolume, PaperThresholds)
{
    // Ratios from Section 3.2.2: <0.01 much-less, [0.01,0.9) less,
    // [0.9,1.1) equal, >=1.1 greater.
    EXPECT_EQ(classifyDataVolume(5, 1000), DataVolume::MuchLess);
    EXPECT_EQ(classifyDataVolume(10, 1000), DataVolume::Less);
    EXPECT_EQ(classifyDataVolume(899, 1000), DataVolume::Less);
    EXPECT_EQ(classifyDataVolume(900, 1000), DataVolume::Equal);
    EXPECT_EQ(classifyDataVolume(1099, 1000), DataVolume::Equal);
    EXPECT_EQ(classifyDataVolume(1100, 1000), DataVolume::Greater);
}

TEST(DataVolume, ZeroInputIsMuchLess)
{
    EXPECT_EQ(classifyDataVolume(100, 0), DataVolume::MuchLess);
}

TEST(DataBehavior, DescribeMatchesTable2Format)
{
    DataBehavior d;
    d.inputBytes = 1000;
    d.outputBytes = 5;
    d.intermediateBytes = 0;
    EXPECT_EQ(d.describe(), "Output<<Input, no Intermediate");

    d.intermediateBytes = 950;
    EXPECT_EQ(d.describe(), "Output<<Input, Intermediate=Input");

    d.outputBytes = 1500;
    EXPECT_EQ(d.describe(), "Output>Input, Intermediate=Input");
}

TEST(IoCounters, MergeAccumulates)
{
    IoCounters a, b;
    a.diskReadBytes = 10;
    b.diskReadBytes = 5;
    b.networkBytes = 7;
    a.merge(b);
    EXPECT_EQ(a.diskReadBytes, 15u);
    EXPECT_EQ(a.networkBytes, 7u);
}

TEST(SysProfile, ClassificationRuleBoundaries)
{
    // Exactly at the CPU threshold: utilization must exceed 0.85.
    SystemProfile p;
    p.cpuUtilization = 0.851;
    EXPECT_EQ(classifySystemBehavior(p), SystemBehavior::CpuIntensive);
    p.cpuUtilization = 0.849;
    p.ioWaitRatio = 0.0;
    p.weightedDiskIoTimeRatio = 0.0;
    EXPECT_EQ(classifySystemBehavior(p), SystemBehavior::Hybrid);
    // IO rule requires CPU below 60% as well.
    p.ioWaitRatio = 0.5;
    p.cpuUtilization = 0.65;
    EXPECT_EQ(classifySystemBehavior(p), SystemBehavior::Hybrid);
    p.cpuUtilization = 0.55;
    EXPECT_EQ(classifySystemBehavior(p), SystemBehavior::IoIntensive);
}

} // namespace
} // namespace wcrt
