/**
 * @file
 * Tests for the single-pass stack-distance MRC layer: bit-exact
 * equivalence between the Mattson profile's curve and the
 * fully-associative LRU cache sweep on randomized traces under every
 * delivery partition, the compaction and parallel paths, the replay
 * layer's MrcMode plumbing (stack / oracle / verify) with its
 * documented stack-vs-oracle divergence bound, and the knee finder's
 * "no knee within ladder" semantics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <vector>

#include "base/rng.hh"
#include "sim/footprint.hh"
#include "sim/stack_distance.hh"
#include "tracefile/replay.hh"
#include "tracefile/trace_writer.hh"

namespace wcrt {
namespace {

namespace fs = std::filesystem;

/** Block sizes covering the interesting partitions of one stream. */
const size_t kBlockSizes[] = {1, 7, 4096};

constexpr size_t kStreamOps = 10000;

/** Randomized mixed stream: scattered data over a few MB of heap. */
std::vector<MicroOp>
syntheticStream(size_t count, uint64_t seed = 23)
{
    Rng rng(seed);
    std::vector<MicroOp> ops(count);
    for (size_t i = 0; i < ops.size(); ++i) {
        MicroOp &op = ops[i];
        op.pc = 0x400000 + (i % 4093) * 4;
        uint64_t pick = rng.nextBelow(100);
        if (pick < 25) {
            op.kind = OpKind::Load;
            op.memAddr = rng.nextBelow(1 << 22);
            op.memSize = 8;
        } else if (pick < 35) {
            op.kind = OpKind::Store;
            op.memAddr = rng.nextBelow(1 << 22);
            op.memSize = 8;
        } else if (pick < 50) {
            op.kind = OpKind::BranchCond;
            op.taken = rng.nextBool(0.4);
            op.target = 0x400000 + rng.nextBelow(16384);
        } else {
            op.kind = OpKind::IntAlu;
            op.purpose = pick < 80 ? IntPurpose::IntAddress
                                   : IntPurpose::Compute;
        }
    }
    return ops;
}

/** Streaming-locality stream: strided cursors + random chases. */
std::vector<MicroOp>
streamingStream(size_t count)
{
    Rng rng(31);
    std::vector<MicroOp> ops(count);
    uint64_t read_cursor = 0;
    uint64_t write_cursor = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
        MicroOp &op = ops[i];
        op.pc = 0x400000 + (i % 4096) * 4;
        uint64_t pick = rng.nextBelow(100);
        if (pick < 25) {
            op.kind = OpKind::Load;
            op.memAddr = 0x10000000 + (read_cursor % (128 * 1024));
            read_cursor += 8;
            op.memSize = 8;
        } else if (pick < 30) {
            op.kind = OpKind::Load;
            op.memAddr = 0x30000000 + rng.nextBelow(1 << 22);
            op.memSize = 8;
        } else if (pick < 40) {
            op.kind = OpKind::Store;
            op.memAddr = 0x20000000 + (write_cursor % (128 * 1024));
            write_cursor += 8;
            op.memSize = 8;
        } else {
            op.kind = OpKind::IntAlu;
            op.purpose = IntPurpose::IntAddress;
        }
    }
    return ops;
}

/** Feed ops through consumeBatch in blocks of `block`, like emitters. */
void
feedBlocked(TraceSink &sink, const std::vector<MicroOp> &ops,
            size_t block)
{
    OpBlock buf(block);
    for (size_t i = 0; i < ops.size(); i += block) {
        size_t n = std::min(block, ops.size() - i);
        buf.clear();
        for (size_t j = 0; j < n; ++j)
            buf.push(ops[i + j]);
        sink.consumeBlock(buf);
    }
}

void
feedPerOp(TraceSink &sink, const std::vector<MicroOp> &ops)
{
    for (const auto &op : ops)
        sink.consume(op);
}

/**
 * The oracle the profile must match bit-exactly: a fully-associative
 * LRU cache of `kb` capacity — one FootprintSweep rung with
 * assoc = lines, i.e. a single set holding the whole capacity.
 */
std::vector<double>
fullyAssocRatios(const std::vector<MicroOp> &ops, uint32_t kb,
                 size_t block)
{
    uint32_t lines = kb * 1024 / 64;
    FootprintSweep sweep({kb}, /*assoc=*/lines);
    if (block == 0)
        feedPerOp(sweep, ops);
    else
        feedBlocked(sweep, ops, block);
    return {sweep.missRatios(SweepKind::Instruction)[0],
            sweep.missRatios(SweepKind::Data)[0],
            sweep.missRatios(SweepKind::Unified)[0]};
}

/** The capacities the equivalence runs ladder (kept small: the
 *  fully-associative oracle walks every line of a set per access). */
const uint32_t kEquivalenceKb[] = {16, 64, 256};

void
expectMatchesFullyAssoc(const std::vector<MicroOp> &ops)
{
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        StackDistanceProfile profile;
        feedBlocked(profile, ops, block);
        for (uint32_t kb : kEquivalenceKb) {
            SCOPED_TRACE(std::to_string(kb) + " KB");
            auto oracle = fullyAssocRatios(ops, kb, block);
            // Bit-exact: both sides compute misses/accesses in the
            // same integer spaces before one double division.
            EXPECT_EQ(profile.missRatios(SweepKind::Instruction,
                                         {kb})[0],
                      oracle[0]);
            EXPECT_EQ(profile.missRatios(SweepKind::Data, {kb})[0],
                      oracle[1]);
            EXPECT_EQ(profile.missRatios(SweepKind::Unified, {kb})[0],
                      oracle[2]);
        }
    }
}

TEST(StackDistance, MatchesFullyAssociativeLruOnRandomTrace)
{
    expectMatchesFullyAssoc(syntheticStream(kStreamOps));
}

TEST(StackDistance, MatchesFullyAssociativeLruOnStreamingTrace)
{
    expectMatchesFullyAssoc(streamingStream(kStreamOps));
}

TEST(StackDistance, BatchDeliveryMatchesPerOp)
{
    auto ops = syntheticStream(kStreamOps);
    StackDistanceProfile per_op;
    feedPerOp(per_op, ops);
    auto sizes = paperSweepSizesKb();
    for (size_t block : kBlockSizes) {
        SCOPED_TRACE("block " + std::to_string(block));
        StackDistanceProfile batched;
        feedBlocked(batched, ops, block);
        for (auto kind : {SweepKind::Instruction, SweepKind::Data,
                          SweepKind::Unified}) {
            EXPECT_EQ(batched.missRatios(kind, sizes),
                      per_op.missRatios(kind, sizes));
            EXPECT_EQ(batched.histogram(kind), per_op.histogram(kind));
            EXPECT_EQ(batched.accesses(kind), per_op.accesses(kind));
            EXPECT_EQ(batched.coldMisses(kind),
                      per_op.coldMisses(kind));
            EXPECT_EQ(batched.distinctLines(kind),
                      per_op.distinctLines(kind));
        }
        EXPECT_EQ(batched.instructions(), per_op.instructions());
    }
}

TEST(StackDistance, SlotCompactionPreservesEveryDistance)
{
    // A tiny initial slot space forces many compaction/regrow cycles
    // over a stream that keeps re-touching old lines; the renumbering
    // is order-preserving, so the histogram must come out identical
    // to a profile that never compacted.
    auto ops = syntheticStream(kStreamOps, 47);
    StackDistanceProfile roomy(64, 0, 1 << 16);
    StackDistanceProfile cramped(64, 0, 16);
    feedPerOp(roomy, ops);
    feedPerOp(cramped, ops);
    for (auto kind : {SweepKind::Instruction, SweepKind::Data,
                      SweepKind::Unified}) {
        EXPECT_EQ(cramped.histogram(kind), roomy.histogram(kind));
        EXPECT_EQ(cramped.coldMisses(kind), roomy.coldMisses(kind));
        EXPECT_EQ(cramped.accesses(kind), roomy.accesses(kind));
    }
}

TEST(StackDistance, ParallelStreamsMatchSerial)
{
    auto ops = streamingStream(kStreamOps);
    StackDistanceProfile serial(64, 0);
    StackDistanceProfile parallel(64, 4);
    feedBlocked(serial, ops, 4096);
    feedBlocked(parallel, ops, 4096);
    auto sizes = paperSweepSizesKb();
    for (auto kind : {SweepKind::Instruction, SweepKind::Data,
                      SweepKind::Unified}) {
        EXPECT_EQ(parallel.histogram(kind), serial.histogram(kind));
        EXPECT_EQ(parallel.missRatios(kind, sizes),
                  serial.missRatios(kind, sizes));
    }
}

TEST(StackDistance, CountsKnownDistances)
{
    // Lines A B C A B: the re-touches see 2 intervening distinct
    // lines each; every access is one op with no memory reference, so
    // only the instruction/unified streams fill.
    StackDistanceProfile profile;
    auto touch = [&](uint64_t line) {
        MicroOp op;
        op.kind = OpKind::IntAlu;
        op.pc = line * 64;
        profile.consume(op);
    };
    touch(1); touch(2); touch(3); touch(1); touch(2);
    const auto &hist = profile.histogram(SweepKind::Instruction);
    ASSERT_GE(hist.size(), 3u);
    EXPECT_EQ(profile.coldMisses(SweepKind::Instruction), 3u);
    EXPECT_EQ(profile.distinctLines(SweepKind::Instruction), 3u);
    EXPECT_EQ(hist[2], 2u);
    EXPECT_EQ(profile.accesses(SweepKind::Instruction), 5u);
    // Totals reconcile: accesses = cold + sum(hist).
    uint64_t reuses = 0;
    for (uint64_t h : hist)
        reuses += h;
    EXPECT_EQ(profile.coldMisses(SweepKind::Instruction) + reuses,
              profile.accesses(SweepKind::Instruction));
    // The smallest expressible rung (1 KB = 16 lines) holds all three
    // lines, so only the cold misses remain: ratio 3/5 exactly.
    EXPECT_EQ(profile.missRatios(SweepKind::Instruction, {1})[0],
              3.0 / 5.0);
}

/** Accounting identity on a big randomized trace. */
TEST(StackDistance, HistogramAccountingReconciles)
{
    auto ops = syntheticStream(kStreamOps);
    StackDistanceProfile profile;
    feedBlocked(profile, ops, 4096);
    for (auto kind : {SweepKind::Instruction, SweepKind::Data,
                      SweepKind::Unified}) {
        uint64_t reuses = 0;
        for (uint64_t h : profile.histogram(kind))
            reuses += h;
        EXPECT_EQ(profile.coldMisses(kind) + reuses,
                  profile.accesses(kind));
        EXPECT_EQ(profile.coldMisses(kind),
                  profile.distinctLines(kind));
    }
}

std::string
tracePath(const std::string &tag)
{
    return (fs::temp_directory_path() / ("wcrt-mrc-" + tag + ".wtrace"))
        .string();
}

std::string
writeTrace(const std::string &tag, const std::vector<MicroOp> &ops)
{
    std::string path = tracePath(tag);
    CodeLayout layout;
    layout.addFunction("test", CodeLayer::Application, 8192);
    TraceMeta meta;
    meta.workload = "T-" + tag;
    TraceWriter writer(path, meta, layout);
    writer.consumeOps(ops.data(), ops.size());
    writer.finish();
    return path;
}

TEST(Mrc, ModeNamesRoundTrip)
{
    MrcMode mode = MrcMode::Verify;
    EXPECT_TRUE(parseMrcMode("stack", mode));
    EXPECT_EQ(mode, MrcMode::StackDistance);
    EXPECT_TRUE(parseMrcMode("oracle", mode));
    EXPECT_EQ(mode, MrcMode::ShardedOracle);
    EXPECT_TRUE(parseMrcMode("verify", mode));
    EXPECT_EQ(mode, MrcMode::Verify);
    EXPECT_FALSE(parseMrcMode("bogus", mode));
    EXPECT_EQ(mode, MrcMode::Verify);
    EXPECT_STREQ(toString(MrcMode::StackDistance), "stack");
    EXPECT_STREQ(toString(MrcMode::ShardedOracle), "oracle");
    EXPECT_STREQ(toString(MrcMode::Verify), "verify");
}

TEST(Mrc, ModesAgreeWithEachOtherAndTheLegacyPath)
{
    std::string path = writeTrace("modes", syntheticStream(kStreamOps));
    auto sizes = paperSweepSizesKb();

    auto legacy = replaySweepLadder(path, SweepKind::Unified, sizes, 1);
    MrcResult oracle = replaySweepLadder(
        path, SweepKind::Unified, sizes, MrcMode::ShardedOracle, 1);
    MrcResult stack = replaySweepLadder(
        path, SweepKind::Unified, sizes, MrcMode::StackDistance, 1);
    MrcResult verify = replaySweepLadder(
        path, SweepKind::Unified, sizes, MrcMode::Verify, 1);

    // The oracle mode is the legacy path under a new name.
    EXPECT_EQ(oracle.ratios, legacy);
    EXPECT_TRUE(oracle.oracleRatios.empty());
    EXPECT_EQ(oracle.maxDivergence, 0.0);

    // Verify computes both models over one decode: its stack curve
    // matches stack mode, its oracle curve matches oracle mode, and
    // the divergence is exactly the max gap between them.
    EXPECT_EQ(verify.ratios, stack.ratios);
    EXPECT_EQ(verify.oracleRatios, oracle.ratios);
    double max_gap = 0.0;
    for (size_t i = 0; i < sizes.size(); ++i)
        max_gap = std::max(max_gap, std::abs(verify.ratios[i] -
                                             verify.oracleRatios[i]));
    EXPECT_EQ(verify.maxDivergence, max_gap);

    fs::remove(path);
}

TEST(Mrc, ParallelReplayMatchesSerial)
{
    std::string path =
        writeTrace("jobs", streamingStream(kStreamOps));
    auto sizes = paperSweepSizesKb();
    MrcResult serial = replaySweepLadder(
        path, SweepKind::Instruction, sizes, MrcMode::Verify, 1);
    MrcResult pooled = replaySweepLadder(
        path, SweepKind::Instruction, sizes, MrcMode::Verify, 4);
    EXPECT_EQ(pooled.ratios, serial.ratios);
    EXPECT_EQ(pooled.oracleRatios, serial.oracleRatios);
    fs::remove(path);
}

TEST(Mrc, StackOracleDivergenceWithinDocumentedBound)
{
    // The documented bound (tracefile/replay.hh) is what fig6's
    // verify-mode CI check enforces on real workloads; hold the same
    // line on both randomized trace shapes, on every stream kind.
    for (const char *shape : {"synthetic", "streaming"}) {
        auto ops = std::string(shape) == "synthetic"
                       ? syntheticStream(kStreamOps)
                       : streamingStream(kStreamOps);
        std::string path = writeTrace(shape, ops);
        for (auto kind : {SweepKind::Instruction, SweepKind::Data,
                          SweepKind::Unified}) {
            MrcResult r = replaySweepLadder(path, kind,
                                            paperSweepSizesKb(),
                                            MrcMode::Verify, 1);
            SCOPED_TRACE(shape);
            EXPECT_LE(r.maxDivergence, kMrcOracleDivergenceBound);
        }
        fs::remove(path);
    }
}

TEST(Knee, FlatCurveKneesAtTheFirstRung)
{
    std::vector<uint32_t> sizes{16, 32, 64, 128};
    std::vector<double> flat{0.02, 0.02, 0.02, 0.02};
    auto knee = kneeCapacityKb(flat, sizes);
    ASSERT_TRUE(knee.has_value());
    EXPECT_EQ(*knee, 16u);
}

TEST(Knee, MonotoneCurveKneesWhereItFlattens)
{
    std::vector<uint32_t> sizes{16, 32, 64, 128, 256};
    std::vector<double> curve{0.40, 0.20, 0.021, 0.020, 0.020};
    auto knee = kneeCapacityKb(curve, sizes);
    ASSERT_TRUE(knee.has_value());
    EXPECT_EQ(*knee, 64u);
}

TEST(Knee, StillFallingCurveHasNoKneeWithinLadder)
{
    // Strictly halving into the final rung: the old code reported
    // sizes.back() here as if it were a measurement; now the ladder
    // end is explicit.
    std::vector<uint32_t> sizes{16, 32, 64, 128};
    std::vector<double> curve{0.40, 0.20, 0.10, 0.05};
    EXPECT_FALSE(kneeCapacityKb(curve, sizes).has_value());
}

TEST(Knee, NoisyCurveUsesTheFirstRungInsideTheFloorBand)
{
    // Noise keeps rung 1 above the 15% band of the 0.030 floor, rung 2
    // dips inside it: the knee is rung 2 even though rung 3 pops back
    // out — the finder is first-crossing, as the figures describe.
    std::vector<uint32_t> sizes{16, 32, 64, 128, 256};
    std::vector<double> curve{0.30, 0.036, 0.031, 0.039, 0.030};
    auto knee = kneeCapacityKb(curve, sizes);
    ASSERT_TRUE(knee.has_value());
    EXPECT_EQ(*knee, 64u);
}

TEST(Knee, DegenerateInputsReturnNoKnee)
{
    EXPECT_FALSE(kneeCapacityKb({}, {}).has_value());
    EXPECT_FALSE(kneeCapacityKb({0.1}, {16, 32}).has_value());
    // A single-rung ladder can never flatten *before* its last rung.
    EXPECT_FALSE(kneeCapacityKb({0.1}, {16}).has_value());
}

} // namespace
} // namespace wcrt
