/**
 * @file
 * Tests for the scenario DSL: structural parsing and round-trips,
 * accumulate-all error reporting, seeded-generator determinism under
 * evaluation-order and worker-count changes, matrix expansion order,
 * scenario-vs-hand-registered roster identity and the sweep engine's
 * scenario-vs-bench bit-identity guarantee.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "scenario/generator.hh"
#include "scenario/parser.hh"
#include "scenario/runner.hh"
#include "scenario/scenario.hh"
#include "tracefile/replay.hh"
#include "workloads/registry.hh"

namespace wcrt {
namespace {

namespace fs = std::filesystem;

std::string
scnPath(const std::string &name)
{
#ifdef WCRT_SCENARIO_DIR
    return std::string(WCRT_SCENARIO_DIR) + "/" + name;
#else
    return "scenarios/" + name;
#endif
}

/** Fresh, empty temp directory for a test's trace cache. */
std::string
tempCacheDir(const std::string &tag)
{
    std::string dir =
        (fs::temp_directory_path() / ("wcrt-scn-" + tag)).string();
    fs::remove_all(dir);
    return dir;
}

bool
hasIssue(const std::vector<ScenarioIssue> &issues,
         const std::string &needle)
{
    for (const auto &i : issues)
        if (i.message.find(needle) != std::string::npos)
            return true;
    return false;
}

// --------------------------------------------------------- structural layer

TEST(ScenarioParserTest, RoundTripIsStable)
{
    const std::string text =
        "[scenario]\n"
        "name = demo\n"
        "kind = sweep\n"
        "\n"
        "[workloads]\n"
        "group A = H-Grep, M-Sort\n";
    ScenarioDoc doc = parseScenarioText(text);
    EXPECT_TRUE(doc.ok());
    ScenarioDoc again = parseScenarioText(doc.toText());
    EXPECT_TRUE(again.ok());
    EXPECT_EQ(doc.toText(), again.toText());
    ASSERT_EQ(again.sections.size(), 2u);
    EXPECT_EQ(again.sections[0].name, "scenario");
    EXPECT_EQ(again.sections[1].entries[0].key, "group A");
    EXPECT_EQ(again.sections[1].entries[0].value, "H-Grep, M-Sort");
}

TEST(ScenarioParserTest, CommentsAndBlanksIgnored)
{
    ScenarioDoc doc = parseScenarioText(
        "# leading comment\n\n[s]\n  # indented comment\nk = v\n");
    EXPECT_TRUE(doc.ok());
    ASSERT_EQ(doc.sections.size(), 1u);
    EXPECT_EQ(doc.sections[0].entries[0].value, "v");
}

TEST(ScenarioParserTest, AccumulatesEveryStructuralIssue)
{
    // One document, four independent problems: the parser must report
    // all of them, not stop at the first.
    ScenarioDoc doc = parseScenarioText("orphan = 1\n"
                                        "[a]\n"
                                        "= missing\n"
                                        "k = 1\n"
                                        "k = 2\n"
                                        "[a]\n");
    EXPECT_EQ(doc.issues.size(), 4u);
    EXPECT_TRUE(hasIssue(doc.issues, "before the first section"));
    EXPECT_TRUE(hasIssue(doc.issues, "missing key"));
    EXPECT_TRUE(hasIssue(doc.issues, "duplicate key 'k'"));
    EXPECT_TRUE(hasIssue(doc.issues, "duplicate section [a]"));
}

TEST(ScenarioParserTest, IssueFormatIncludesSourceAndLine)
{
    ScenarioDoc doc = parseScenarioText("nonsense\n", "demo.scn");
    ASSERT_EQ(doc.issues.size(), 1u);
    std::string msg = doc.issues[0].format(doc.source);
    EXPECT_NE(msg.find("demo.scn:1:"), std::string::npos);
}

// ----------------------------------------------------------- semantic layer

TEST(ScenarioSpecTest, AccumulatesEverySemanticIssue)
{
    ScenarioParse parse = parseScenario(parseScenarioText(
        "[scenario]\n"
        "name = broken\n"
        "kind = sweep\n"
        "frobnicate = 1\n"
        "[workloads]\n"
        "group G = H-Grep, No-Such-Workload\n"
        "[generators]\n"
        "g = warble(3)\n"
        "[matrix]\n"
        "machine = xeon\n"));
    EXPECT_FALSE(parse.ok());
    EXPECT_TRUE(hasIssue(parse.issues, "unknown key 'frobnicate'"));
    EXPECT_TRUE(
        hasIssue(parse.issues, "unknown workload 'No-Such-Workload'"));
    EXPECT_TRUE(hasIssue(parse.issues, "unknown generator kind"));

    // The machine axis is a replay-only concept; expansion flags it.
    std::vector<ScenarioIssue> expand_issues;
    expandScenario(parse.spec, 0.5, expand_issues);
    EXPECT_TRUE(
        hasIssue(expand_issues, "not valid for sweep scenarios"));
}

TEST(ScenarioSpecTest, BadMatrixAxisValuesReported)
{
    ScenarioParse parse = parseScenario(
        parseScenarioText("[scenario]\n"
                          "name = m\n"
                          "kind = sweep\n"
                          "[workloads]\n"
                          "group G = H-Grep\n"
                          "[matrix]\n"
                          "scale = 0.5, banana\n"
                          "mode = stack, sideways\n"
                          "color = red\n"));
    EXPECT_TRUE(hasIssue(parse.issues, "unknown matrix axis 'color'"));
    std::vector<ScenarioIssue> issues;
    std::vector<ScenarioCell> cells =
        expandScenario(parse.spec, 0.5, issues);
    EXPECT_TRUE(cells.empty());
    EXPECT_TRUE(hasIssue(issues, "bad scale value 'banana'"));
    EXPECT_TRUE(hasIssue(issues, "bad mode value 'sideways'"));
}

TEST(ScenarioSpecTest, TrafficRequiresTargetAndPhases)
{
    ScenarioParse parse = parseScenario(parseScenarioText(
        "[scenario]\nname = t\nkind = traffic\n"));
    EXPECT_TRUE(hasIssue(parse.issues, "need a 'target'"));
    EXPECT_TRUE(hasIssue(parse.issues, "[phases] section"));
}

TEST(ScenarioSpecTest, PhaseValidation)
{
    ScenarioParse parse = parseScenario(parseScenarioText(
        "[scenario]\n"
        "name = p\n"
        "kind = traffic\n"
        "target = kv-get\n"
        "[phases]\n"
        "phase a = poisson, ops=8\n"
        "phase b = closed, ops=8, rate-hz=10\n"
        "phase c = warble, ops=8\n"
        "phase d = token-bucket, ops=8, rate-hz=5, rate-x=0.5\n"));
    EXPECT_TRUE(hasIssue(parse.issues, "needs rate-hz or rate-x"));
    EXPECT_TRUE(hasIssue(parse.issues, "unknown arrival 'warble'"));
    EXPECT_TRUE(
        hasIssue(parse.issues, "both rate-hz and rate-x"));
    EXPECT_TRUE(hasIssue(parse.issues, "does not take a rate"));
}

TEST(ScenarioSpecTest, MatrixExpansionOrderFirstAxisSlowest)
{
    ScenarioParse parse = parseScenario(
        parseScenarioText("[scenario]\n"
                          "name = order\n"
                          "kind = sweep\n"
                          "[workloads]\n"
                          "group G1 = H-Grep\n"
                          "group G2 = M-Grep\n"
                          "[matrix]\n"
                          "mode = stack, oracle\n"
                          "scale = 0.25, 0.5\n"));
    ASSERT_TRUE(parse.ok()) << parse.formatIssues();
    std::vector<ScenarioIssue> issues;
    std::vector<ScenarioCell> cells =
        expandScenario(parse.spec, 1.0, issues);
    ASSERT_TRUE(issues.empty());
    // mode (declared first) slowest, then scale, then the default
    // group axis (all declared groups) fastest.
    ASSERT_EQ(cells.size(), 8u);
    EXPECT_EQ(cells[0].label, "group=G1 scale=0.25 mode=stack");
    EXPECT_EQ(cells[1].label, "group=G2 scale=0.25 mode=stack");
    EXPECT_EQ(cells[2].label, "group=G1 scale=0.5 mode=stack");
    EXPECT_EQ(cells[3].label, "group=G2 scale=0.5 mode=stack");
    EXPECT_EQ(cells[4].label, "group=G1 scale=0.25 mode=oracle");
    EXPECT_EQ(cells[7].label, "group=G2 scale=0.5 mode=oracle");
    EXPECT_EQ(cells[4].mode, MrcMode::ShardedOracle);
    EXPECT_DOUBLE_EQ(cells[0].scale, 0.25);
    for (size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(cells[i].index, i);
}

TEST(ScenarioSpecTest, EmptyExpansionIsAnError)
{
    ScenarioParse parse = parseScenario(parseScenarioText(
        "[scenario]\nname = e\nkind = sweep\n"));
    // No [workloads]: the semantic layer already objects...
    EXPECT_TRUE(hasIssue(parse.issues, "at least one group"));
    // ...and expansion reports the empty default group axis.
    std::vector<ScenarioIssue> issues;
    EXPECT_TRUE(expandScenario(parse.spec, 0.5, issues).empty());
    EXPECT_TRUE(hasIssue(issues, "expands to no values"));
}

TEST(ScenarioSpecTest, LookupWorkloadCoversAllRosters)
{
    EXPECT_NE(lookupWorkload("H-WordCount"), nullptr);
    EXPECT_NE(lookupWorkload("M-Bayes"), nullptr);
    EXPECT_NE(lookupWorkload("H-WordCount@wiki"), nullptr);
    EXPECT_NE(lookupWorkload("PARSEC-like"), nullptr);
    EXPECT_EQ(lookupWorkload("No-Such-Workload"), nullptr);
}

// -------------------------------------------------------------- generators

TEST(GeneratorTest, ParseValidatesSpecs)
{
    ValueGen gen;
    std::string err;
    EXPECT_TRUE(ValueGen::parse("zipf(1000, 0.99)", gen, err));
    EXPECT_EQ(gen.kind(), GenKind::Zipf);
    EXPECT_EQ(gen.spec(), "zipf(1000, 0.99)");
    EXPECT_TRUE(ValueGen::parse("bytes(64)", gen, err));
    EXPECT_TRUE(ValueGen::parse("words(8, 500)", gen, err));
    EXPECT_FALSE(ValueGen::parse("zipf(1000)", gen, err));
    EXPECT_NE(err.find("2 arguments"), std::string::npos);
    EXPECT_FALSE(ValueGen::parse("uniform(9, 1)", gen, err));
    EXPECT_FALSE(ValueGen::parse("warble(1)", gen, err));
    EXPECT_FALSE(ValueGen::parse("zipf", gen, err));
}

TEST(GeneratorTest, DrawsAreOrderIndependent)
{
    ValueGen gen;
    std::string err;
    ASSERT_TRUE(ValueGen::parse("zipf(5000, 0.9)", gen, err));

    constexpr uint64_t kSeed = 42;
    constexpr size_t kActors = 3;
    constexpr size_t kOps = 256;

    // Reference: sequential evaluation in (actor, op) order.
    std::vector<uint64_t> ref(kActors * kOps);
    for (size_t a = 0; a < kActors; ++a)
        for (size_t op = 0; op < kOps; ++op)
            ref[a * kOps + op] = gen.drawIndex({kSeed, a, op});

    // Shuffled evaluation order must reproduce it exactly.
    std::vector<size_t> order(ref.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::mt19937 shuffle_rng(7);
    std::shuffle(order.begin(), order.end(), shuffle_rng);
    std::vector<uint64_t> shuffled(ref.size());
    for (size_t i : order)
        shuffled[i] = gen.drawIndex({kSeed, i / kOps, i % kOps});
    EXPECT_EQ(shuffled, ref);

    // Parallel evaluation (the jobs=N world) must as well.
    std::vector<uint64_t> parallel(ref.size());
    parallelFor(ref.size(), [&](size_t i) {
        parallel[i] = gen.drawIndex({kSeed, i / kOps, i % kOps});
    }, 4);
    EXPECT_EQ(parallel, ref);
}

TEST(GeneratorTest, StreamsAreDistinctAcrossActorsAndGenerators)
{
    ValueGen zipf, uniform;
    std::string err;
    ASSERT_TRUE(ValueGen::parse("zipf(1000000, 0.9)", zipf, err));
    ASSERT_TRUE(
        ValueGen::parse("uniform(0, 999999)", uniform, err));

    size_t same_actor = 0, same_gen = 0;
    for (uint64_t op = 0; op < 200; ++op) {
        if (zipf.drawIndex({1, 0, op}) == zipf.drawIndex({1, 1, op}))
            ++same_actor;
        if (zipf.drawIndex({1, 0, op}) ==
            uniform.drawIndex({1, 0, op}))
            ++same_gen;
    }
    EXPECT_LT(same_actor, 20u);  // collisions allowed, mirroring not
    EXPECT_LT(same_gen, 20u);
}

TEST(GeneratorTest, TextDrawsAreSizedAndDeterministic)
{
    ValueGen bytes, words;
    std::string err;
    ASSERT_TRUE(ValueGen::parse("bytes(64)", bytes, err));
    ASSERT_TRUE(ValueGen::parse("words(6, 100)", words, err));
    std::string doc = bytes.drawText({9, 2, 5});
    EXPECT_EQ(doc.size(), 64u);
    EXPECT_EQ(doc, bytes.drawText({9, 2, 5}));
    EXPECT_NE(doc, bytes.drawText({9, 2, 6}));
    std::string query = words.drawText({9, 0, 0});
    EXPECT_EQ(std::count(query.begin(), query.end(), ' '), 5);
}

// ------------------------------------------------- checked-in scenarios

TEST(ScenarioFilesTest, Fig6GroupMatchesHandRegisteredRoster)
{
    ScenarioParse parse = loadScenario(scnPath("fig6_icache.scn"));
    ASSERT_TRUE(parse.ok()) << parse.formatIssues();
    EXPECT_EQ(parse.spec.kind, ScenarioKind::Sweep);
    EXPECT_EQ(parse.spec.sweepKind, SweepKind::Instruction);
    EXPECT_DOUBLE_EQ(parse.spec.scaleFactor, 0.5);

    // The scenario's Hadoop group must be exactly the hand-registered
    // choice: every representative H-* entry except H-Read, in roster
    // order.
    std::vector<std::string> expect;
    for (const auto &e : representativeWorkloads()) {
        if (e.name.rfind("H-", 0) == 0 && e.name != "H-Read")
            expect.push_back(e.name);
    }
    const ScenarioGroup *g = parse.spec.findGroup("Hadoop");
    ASSERT_NE(g, nullptr);
    std::vector<std::string> got;
    for (const auto &e : g->entries)
        got.push_back(e.name);
    EXPECT_EQ(got, expect);
}

TEST(ScenarioFilesTest, AllCheckedInScenariosValidateAndExpand)
{
    for (const auto &entry : fs::directory_iterator(scnPath(""))) {
        if (entry.path().extension() != ".scn")
            continue;
        ScenarioParse parse = loadScenario(entry.path().string());
        EXPECT_TRUE(parse.ok())
            << entry.path() << ":\n" << parse.formatIssues();
        if (!parse.ok())
            continue;
        std::vector<ScenarioIssue> issues;
        std::vector<ScenarioCell> cells =
            expandScenario(parse.spec, 0.5, issues);
        EXPECT_TRUE(issues.empty()) << entry.path();
        EXPECT_FALSE(cells.empty()) << entry.path();
    }
}

// ----------------------------------------------------------------- runner

TEST(ScenarioRunnerTest, SweepCellBitIdenticalToHandCodedBench)
{
    // The acceptance contract: a scenario-driven fig6 cell reproduces
    // the bench's averageSweepMrc() arithmetic bit-for-bit, in both
    // the stack and oracle modes. One roster entry at a tiny scale
    // keeps the test fast; separate trace dirs prove the identity is
    // not an artifact of sharing cached files.
    ScenarioParse parse = loadScenario(scnPath("fig6_icache.scn"));
    ASSERT_TRUE(parse.ok()) << parse.formatIssues();
    ScenarioSpec spec = parse.spec;
    // Shrink to the first Hadoop entry so both paths run it alone.
    ASSERT_FALSE(spec.groups.empty());
    spec.groups[0].entries.resize(1);
    const WorkloadEntry entry = spec.groups[0].entries[0];
    EXPECT_EQ(entry.name, "H-Difference");

    const double base = 0.125;  // cell scale 0.0625 after the factor
    const double scale = base * spec.scaleFactor;
    for (MrcMode mode :
         {MrcMode::StackDistance, MrcMode::ShardedOracle}) {
        // Hand-coded path: footprint_common.hh averageSweepMrc() with
        // a one-entry group.
        TraceCache hand_cache(tempCacheDir(
            std::string("hand-") + toString(mode)));
        std::string path = hand_cache.ensure(
            entry.name, scale, [&] { return entry.make(scale); });
        MrcResult hand = replaySweepLadder(
            path, SweepKind::Instruction, paperSweepSizesKb(), mode,
            1);

        // Scenario path: the runner on the matching matrix cell.
        RunnerOptions opt;
        opt.jobs = 1;
        opt.baseScale = base;
        opt.traceDir =
            tempCacheDir(std::string("scn-") + toString(mode));
        ScenarioRunner runner(spec, opt);
        std::vector<ScenarioIssue> issues;
        std::vector<ScenarioCell> cells = runner.cells(issues);
        ASSERT_TRUE(issues.empty());
        const ScenarioCell *cell = nullptr;
        for (const auto &c : cells) {
            if (c.group.name == "Hadoop" && c.mode == mode)
                cell = &c;
        }
        ASSERT_NE(cell, nullptr);
        EXPECT_DOUBLE_EQ(cell->scale, scale);
        CellResult r = runner.runCell(*cell);

        ASSERT_EQ(r.sweep.curve.size(), hand.ratios.size());
        for (size_t i = 0; i < hand.ratios.size(); ++i) {
            // Bitwise equality, not tolerance: same trace-cache keys,
            // same ladder call, same averaging order.
            EXPECT_EQ(r.sweep.curve[i], hand.ratios[i])
                << toString(mode) << " rung " << i;
        }
    }
}

TEST(ScenarioRunnerTest, TrafficOpStreamsIdenticalAcrossJobs)
{
    // The loadgen determinism contract through the scenario layer:
    // generator-driven request streams are pure functions of
    // (seed, actor, op), so every op count matches at jobs=1 and
    // jobs=4 (latencies differ; instruction streams cannot).
    ScenarioParse parse = parseScenario(parseScenarioText(
        "[scenario]\n"
        "name = det\n"
        "kind = traffic\n"
        "target = kv-get\n"
        "seed = 11\n"
        "actors = 4\n"
        "key-gen = keys\n"
        "doc-gen = docs\n"
        "[generators]\n"
        "keys = zipf(5000, 0.99)\n"
        "docs = bytes(128)\n"
        "[phases]\n"
        "phase warmup = closed, ops=4, record=off\n"
        "phase steady = closed, ops=24\n"));
    ASSERT_TRUE(parse.ok()) << parse.formatIssues();

    auto run_with_jobs = [&](unsigned jobs) {
        RunnerOptions opt;
        opt.jobs = jobs;
        opt.baseScale = 0.0625;
        ScenarioRunner runner(parse.spec, opt);
        std::vector<ScenarioIssue> issues;
        std::vector<ScenarioCell> cells = runner.cells(issues);
        EXPECT_TRUE(issues.empty());
        EXPECT_EQ(cells.size(), 1u);
        return runner.runCell(cells[0]).traffic;
    };
    TrafficCellResult serial = run_with_jobs(1);
    TrafficCellResult parallel = run_with_jobs(4);

    EXPECT_EQ(serial.result.totalRequests, 4u * (4u + 24u));
    EXPECT_EQ(serial.result.totalRequests,
              parallel.result.totalRequests);
    EXPECT_EQ(serial.result.totalTraceOps,
              parallel.result.totalTraceOps);
    ASSERT_EQ(serial.result.phases.size(),
              parallel.result.phases.size());
    for (size_t i = 0; i < serial.result.phases.size(); ++i) {
        EXPECT_EQ(serial.result.phases[i].requests,
                  parallel.result.phases[i].requests);
        EXPECT_EQ(serial.result.phases[i].traceOps,
                  parallel.result.phases[i].traceOps);
    }
}

} // namespace
} // namespace wcrt
