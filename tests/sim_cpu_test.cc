/**
 * @file
 * Tests for the prefetcher, the footprint sweeper and the integrated
 * SimCpu model (report consistency, machine configs, metric vector).
 */

#include <gtest/gtest.h>

#include <set>

#include "base/rng.hh"
#include "core/metrics.hh"
#include "sim/footprint.hh"
#include "sim/prefetcher.hh"
#include "sim/sim_cpu.hh"
#include "trace/code_layout.hh"
#include "trace/tracer.hh"

namespace wcrt {
namespace {

TEST(Prefetcher, ConfirmsForwardStream)
{
    StreamPrefetcher pf;
    StreamPrefetcher::Advice a;
    for (int i = 0; i < 8; ++i)
        a = pf.observe(0x10000 + static_cast<uint64_t>(i) * 64);
    EXPECT_TRUE(a.covered);
    EXPECT_GT(a.prefetchLines, 0u);
    EXPECT_GE(pf.streamsConfirmed(), 1u);
}

TEST(Prefetcher, IgnoresRandomAccesses)
{
    StreamPrefetcher pf;
    Rng rng(3);
    bool any_covered = false;
    for (int i = 0; i < 200; ++i) {
        auto a = pf.observe(rng.nextBelow(1ull << 30) & ~63ull);
        any_covered = any_covered || a.covered;
    }
    EXPECT_FALSE(any_covered);
}

TEST(Prefetcher, TracksInterleavedStreams)
{
    StreamPrefetcher pf;
    uint64_t covered = 0;
    for (int i = 0; i < 64; ++i) {
        // Three interleaved forward streams (like STREAM triad).
        covered += pf.observe(0x100000 + i * 64ull).covered;
        covered += pf.observe(0x900000 + i * 64ull).covered;
        covered += pf.observe(0x1200000 + i * 64ull).covered;
    }
    EXPECT_GT(covered, 150u);  // nearly all after warmup
}

TEST(Prefetcher, DisabledNeverCovers)
{
    PrefetcherConfig cfg;
    cfg.enabled = false;
    StreamPrefetcher pf(cfg);
    for (int i = 0; i < 32; ++i)
        EXPECT_FALSE(pf.observe(i * 64ull).covered);
}

TEST(FootprintSweep, MonotoneNonIncreasingCurves)
{
    CodeLayout layout;
    auto fw = layout.addFunction("big", CodeLayer::Framework, 256 * 1024,
                                 CallProfile{400, 4096});
    FootprintSweep sweep({16, 64, 256, 1024});
    Tracer t(layout, sweep);
    t.call(fw);
    for (int i = 0; i < 200; ++i) {
        t.ret();
        t.call(fw);
    }
    t.ret();
    for (auto kind : {SweepKind::Instruction, SweepKind::Unified}) {
        auto curve = sweep.missRatios(kind);
        for (size_t i = 1; i < curve.size(); ++i)
            EXPECT_LE(curve[i], curve[i - 1] + 1e-9);
    }
}

TEST(FootprintSweep, BigCodeMissesSmallCaches)
{
    CodeLayout layout;
    auto fw = layout.addFunction("big", CodeLayer::Framework, 512 * 1024,
                                 CallProfile{500, 8192});
    FootprintSweep sweep(paperSweepSizesKb());
    Tracer t(layout, sweep);
    for (int i = 0; i < 300; ++i) {
        t.call(fw);
        t.ret();
    }
    auto curve = sweep.missRatios(SweepKind::Instruction);
    // 16 KB must miss clearly more than 8 MB.
    EXPECT_GT(curve.front(), 3.0 * curve.back() + 1e-6);
}

TEST(SimCpu, ReportRatiosAreConsistent)
{
    CodeLayout layout;
    auto fn = layout.addFunction("k", CodeLayer::Application, 4096);
    SimCpu cpu(xeonE5645());
    Tracer t(layout, cpu);
    t.call(fn);
    t.loop(5000, [&](uint64_t i) {
        t.intAlu(IntPurpose::IntAddress, 2);
        t.load(0x100000 + (i * 64) % 65536, 8);
        t.fpAlu(1);
        t.store(0x200000 + (i * 8) % 4096, 8);
    });
    t.ret();
    CpuReport r = cpu.report();

    EXPECT_GT(r.instructions, 5000u * 5);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LT(r.ipc, 4.0);
    EXPECT_NEAR(r.ipc * r.cpi, 1.0, 1e-9);
    double mix = r.loadRatio + r.storeRatio + r.branchRatio +
                 r.integerRatio + r.fpRatio + r.otherRatio;
    EXPECT_NEAR(mix, 1.0, 1e-9);
    EXPECT_GE(r.frontendStallRatio, 0.0);
    EXPECT_GE(r.backendStallRatio, 0.0);
    EXPECT_LE(r.frontendStallRatio + r.backendStallRatio, 1.0);
    EXPECT_GT(r.codeFootprintKb, 0.0);
    EXPECT_GT(r.dataFootprintKb, 0.0);
}

TEST(SimCpu, EmptyRunProducesZeroReport)
{
    SimCpu cpu(xeonE5645());
    CpuReport r = cpu.report();
    EXPECT_EQ(r.instructions, 0u);
    EXPECT_EQ(r.ipc, 0.0);
}

TEST(SimCpu, PrefetchingCoversSequentialStreams)
{
    auto run = [](bool prefetch_on) {
        MachineConfig m = xeonE5645();
        m.prefetch.enabled = prefetch_on;
        CodeLayout layout;
        auto fn = layout.addFunction("s", CodeLayer::Application, 1024);
        SimCpu cpu(m);
        Tracer t(layout, cpu);
        t.call(fn);
        // Stream 8 MB sequentially.
        t.loop(131072, [&](uint64_t i) {
            t.load(0x10000000 + i * 64, 8);
        });
        t.ret();
        return cpu.report().l1dMpki;
    };
    double with = run(true);
    double without = run(false);
    EXPECT_LT(with, without / 5.0);
}

TEST(MachineConfigs, MatchTable3)
{
    MachineConfig m = xeonE5645();
    EXPECT_EQ(m.l1i.sizeBytes, 32u * 1024);
    EXPECT_EQ(m.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(m.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(m.l3.sizeBytes, 12u * 1024 * 1024);
    EXPECT_EQ(m.core.cores, 6u);
    EXPECT_NEAR(m.core.frequencyGhz, 2.4, 1e-9);
    EXPECT_TRUE(m.hasL3);

    MachineConfig a = atomD510();
    EXPECT_FALSE(a.hasL3);
    EXPECT_EQ(a.branch.btbEntries, 128u);
    EXPECT_NEAR(a.core.mlp, 1.0, 1e-9);  // in-order
}

TEST(MachineConfigs, AtomSimSweepsL1)
{
    MachineConfig m = atomInOrderSim(256);
    EXPECT_EQ(m.l1i.sizeBytes, 256u * 1024);
    EXPECT_EQ(m.l1d.sizeBytes, 256u * 1024);
    EXPECT_EQ(m.l1i.assoc, 8u);   // the paper's simulator config
    EXPECT_EQ(m.l1i.lineBytes, 64u);
}

TEST(Metrics, VectorHas45NamedEntries)
{
    EXPECT_EQ(numMetrics, 45u);
    const auto &infos = metricInfos();
    std::set<std::string> names;
    for (const auto &info : infos)
        names.insert(info.name);
    EXPECT_EQ(names.size(), 45u);  // unique
    EXPECT_EQ(metricIndex("pipe.ipc"),
              static_cast<size_t>(24));
}

TEST(Metrics, CoversAllEightCategories)
{
    std::set<MetricCategory> cats;
    for (const auto &info : metricInfos())
        cats.insert(info.category);
    EXPECT_EQ(cats.size(), 8u);  // the paper's eight metric groups
}

TEST(Metrics, VectorMatchesReportFields)
{
    CpuReport r;
    r.instructions = 1000;
    r.ipc = 1.5;
    r.l1iMpki = 12.0;
    r.branchRatio = 0.2;
    MetricVector v = toMetricVector(r);
    EXPECT_DOUBLE_EQ(v[metricIndex("pipe.ipc")], 1.5);
    EXPECT_DOUBLE_EQ(v[metricIndex("cache.l1i_mpki")], 12.0);
    EXPECT_DOUBLE_EQ(v[metricIndex("mix.branch_ratio")], 0.2);
}

} // namespace
} // namespace wcrt
