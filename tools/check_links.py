#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation.

Walks the given markdown files (and any markdown files under given
directories), extracts inline links and images, and verifies that

* every relative target exists on disk, resolved against the file
  that contains the link, and
* every fragment pointing into a markdown file (``FILE.md#anchor`` or
  an in-page ``#anchor``) names a real heading there, using GitHub's
  anchor slugging rules (lowercase, punctuation stripped, spaces to
  hyphens, ``-N`` suffixes for duplicate headings).

External schemes (http/https/mailto) are skipped — this is a
repo-consistency gate, not a network crawler.

Exit status is non-zero if any link is broken, with one line per
offender, so CI output points straight at the stale reference.

Usage:
    tools/check_links.py README.md DESIGN.md docs/
"""

import argparse
import os
import re
import sys

# Inline links/images: [text](target) / ![alt](target). Reference-style
# definitions: [label]: target. Angle brackets around targets allowed.
INLINE_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?[^)]*\)")
REFDEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s*<?(\S+?)>?\s*$", re.MULTILINE)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)
CODE_SPAN_RE = re.compile(r"`([^`]*)`")
INLINE_TEXT_RE = re.compile(r"!?\[([^\]]*)\]\([^)]*\)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def strip_fences(text):
    """Drop fenced code blocks: example paths inside them are not
    repository links, and commented-out headings are not anchors."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def slugify(heading):
    """GitHub's anchor slug for one heading's text."""
    text = CODE_SPAN_RE.sub(r"\1", heading)       # `code` keeps its text
    text = INLINE_TEXT_RE.sub(r"\1", text)        # [text](url) keeps text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)          # strip punctuation
    return text.replace(" ", "-")


def heading_anchors(text):
    """All anchors a markdown body defines, duplicate-suffixed the way
    GitHub does (second "Setup" heading becomes setup-1)."""
    anchors = set()
    counts = {}
    for match in HEADING_RE.finditer(text):
        slug = slugify(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    # Explicit HTML anchors (<a name=...> / id=...) also resolve.
    for match in re.finditer(r"<a\s+(?:name|id)=[\"']([^\"']+)[\"']",
                             text):
        anchors.add(match.group(1).lower())
    return anchors


class AnchorIndex:
    """Lazy per-file cache of defined anchors."""

    def __init__(self):
        self.cache = {}

    def anchors(self, md_path):
        key = os.path.normpath(md_path)
        if key not in self.cache:
            try:
                with open(key, encoding="utf-8") as f:
                    text = f.read()
            except OSError:
                self.cache[key] = set()
            else:
                self.cache[key] = heading_anchors(strip_fences(text))
        return self.cache[key]


def collect_files(paths):
    """Expand files/directories into a sorted list of markdown files."""
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                out.extend(os.path.join(root, n) for n in names
                           if n.endswith(".md"))
        else:
            out.append(path)
    return sorted(set(out))


def check_file(md_path, index):
    """Return a list of (target, reason) for broken links in one file."""
    with open(md_path, encoding="utf-8") as f:
        text = strip_fences(f.read())

    broken = []
    targets = INLINE_RE.findall(text) + REFDEF_RE.findall(text)
    base = os.path.dirname(md_path)
    for target in targets:
        if target.startswith(SKIP_SCHEMES):
            continue
        path, _, fragment = target.partition("#")
        if path:
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                broken.append((target, f"resolved to {resolved}"))
                continue
        else:
            resolved = md_path  # in-page anchor
        if fragment and resolved.endswith(".md"):
            if fragment.lower() not in index.anchors(resolved):
                broken.append(
                    (target, f"no heading '#{fragment}' in {resolved}"))
    return broken


def main():
    parser = argparse.ArgumentParser(
        description="verify relative markdown link targets and "
                    "anchors exist")
    parser.add_argument("paths", nargs="+",
                        help="markdown files or directories to scan")
    args = parser.parse_args()

    files = collect_files(args.paths)
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1

    index = AnchorIndex()
    failures = 0
    for md in files:
        for target, reason in check_file(md, index):
            print(f"{md}: broken link '{target}' ({reason})",
                  file=sys.stderr)
            failures += 1
    print(f"check_links: {len(files)} files scanned, "
          f"{failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
