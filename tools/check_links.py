#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation.

Walks the given markdown files (and any markdown files under given
directories), extracts inline links and images, and verifies that every
relative target exists on disk, resolved against the file that contains
the link. Fragments (``FILE.md#anchor``) are checked for file existence
only; external schemes (http/https/mailto) and pure in-page anchors
(``#section``) are skipped — this is a repo-consistency gate, not a
network crawler.

Exit status is non-zero if any link is broken, with one line per
offender, so CI output points straight at the stale reference.

Usage:
    tools/check_links.py README.md DESIGN.md docs/
"""

import argparse
import os
import re
import sys

# Inline links/images: [text](target) / ![alt](target). Reference-style
# definitions: [label]: target. Angle brackets around targets allowed.
INLINE_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?[^)]*\)")
REFDEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s*<?(\S+?)>?\s*$", re.MULTILINE)

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def collect_files(paths):
    """Expand files/directories into a sorted list of markdown files."""
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                out.extend(os.path.join(root, n) for n in names
                           if n.endswith(".md"))
        else:
            out.append(path)
    return sorted(set(out))


def check_file(md_path):
    """Return a list of (target, reason) for broken links in one file."""
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    # Fenced code blocks routinely contain example paths like
    # /tmp/wc.wtrace that are not repository links; drop them.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)

    broken = []
    targets = INLINE_RE.findall(text) + REFDEF_RE.findall(text)
    base = os.path.dirname(md_path)
    for target in targets:
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = os.path.normpath(os.path.join(base, path))
        if not os.path.exists(resolved):
            broken.append((target, resolved))
    return broken


def main():
    parser = argparse.ArgumentParser(
        description="verify relative markdown link targets exist")
    parser.add_argument("paths", nargs="+",
                        help="markdown files or directories to scan")
    args = parser.parse_args()

    files = collect_files(args.paths)
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1

    failures = 0
    for md in files:
        for target, resolved in check_file(md):
            print(f"{md}: broken link '{target}' "
                  f"(resolved to {resolved})", file=sys.stderr)
            failures += 1
    print(f"check_links: {len(files)} files scanned, "
          f"{failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
